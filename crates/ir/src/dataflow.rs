//! Generic forward-dataflow / abstract-interpretation engine over the SSA
//! CFG, with pluggable value lattices.
//!
//! The solver ([`solve`]) runs three phases over a [`Domain`]:
//!
//! 1. **Grow** — a few optimistic reverse-postorder passes where facts only
//!    move up the lattice (`join` with the old fact).
//! 2. **Widen** — any fact still in motion (loop-carried growth) is widened
//!    via [`Domain::widen`]; repeated until a complete pass is quiet, at
//!    which point the state is a post-fixpoint of the transfer function.
//! 3. **Narrow** — a bounded number of passes that *replace* each fact with
//!    the transfer output. Starting from a post-fixpoint and applying a
//!    monotone transfer keeps every fact above the least fixpoint, so this
//!    recovers precision lost to widening (e.g. a loop counter bounded by
//!    its exit test) without risking unsoundness.
//!
//! Facts at uses are sharpened by **branch guards**: when a two-way branch
//! `br c, T, E` dominates the program point (see [`block_guards`]), the
//! direct operands of `c` may be intersected with what the branch outcome
//! implies ([`Domain::refine`]). This is sound in SSA form: the comparison
//! dominates the guarded block, and SSA values are immutable, so the
//! operands still hold the compared values at every dominated use.
//!
//! Shipped domains: [`Intervals`] (value ranges, the basis of width
//! narrowing and bounds checks) and [`KnownBits`] (tri-state known-bit
//! masks, which catch `x & 0xF0`-style facts intervals cannot express).
//! [`may_written_on_entry`] is a small independent memory analysis used by
//! the uninitialized-read lint.

use crate::dom::DomTree;
use crate::ir::*;
use chls_frontend::IntType;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Range lattice element
// ---------------------------------------------------------------------------

/// An inclusive value interval over canonical (i64) values.
///
/// Tracked in `i128` so interval arithmetic never overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Smallest possible value.
    pub lo: i128,
    /// Largest possible value.
    pub hi: i128,
}

impl Range {
    /// The exact range of one constant.
    pub fn exact(v: i64) -> Self {
        Range {
            lo: v as i128,
            hi: v as i128,
        }
    }

    /// The full range of a declared type.
    pub fn of_type(ty: IntType) -> Self {
        if ty.signed {
            Range {
                lo: -(1i128 << (ty.width - 1)),
                hi: (1i128 << (ty.width - 1)) - 1,
            }
        } else {
            Range {
                lo: 0,
                hi: (1i128 << ty.width) - 1,
            }
        }
    }

    /// Smallest interval containing both.
    pub fn union(self, other: Range) -> Range {
        Range {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; `None` when the intervals are disjoint.
    pub fn intersect(self, other: Range) -> Option<Range> {
        let r = Range {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        };
        (r.lo <= r.hi).then_some(r)
    }

    /// True when the interval is a single value.
    pub fn is_const(self) -> bool {
        self.lo == self.hi
    }

    /// Minimal width (1..=64) needed to represent every value in the range
    /// with the given signedness.
    pub fn needed_width(self, signed: bool) -> u16 {
        fn bits_unsigned(v: i128) -> u16 {
            if v <= 0 {
                1
            } else {
                (128 - v.leading_zeros()) as u16
            }
        }
        let w = if signed || self.lo < 0 {
            // Two's complement: enough bits for both ends.
            let lo_bits = if self.lo < 0 {
                (128 - (-(self.lo + 1)).leading_zeros() + 1) as u16
            } else {
                1
            };
            let hi_bits = if self.hi <= 0 {
                1
            } else {
                bits_unsigned(self.hi) + 1
            };
            lo_bits.max(hi_bits)
        } else {
            bits_unsigned(self.hi)
        };
        w.clamp(1, 64)
    }
}

// ---------------------------------------------------------------------------
// Branch guards
// ---------------------------------------------------------------------------

/// A fact holding at a program point: the branch condition `cond` was
/// observed to be true (`polarity`) or false (`!polarity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guard {
    /// The branch condition value (a `u1`).
    pub cond: Value,
    /// `true` when the taken edge was the then-edge.
    pub polarity: bool,
}

/// The guard implied by the CFG edge `p -> b`, if `p` ends in a two-way
/// branch distinguishing its successors.
pub fn edge_guard(f: &Function, p: BlockId, b: BlockId) -> Option<Guard> {
    if let Term::Br { cond, then, els } = f.block(p).term {
        if then != els {
            if b == then {
                return Some(Guard {
                    cond,
                    polarity: true,
                });
            }
            if b == els {
                return Some(Guard {
                    cond,
                    polarity: false,
                });
            }
        }
    }
    None
}

/// For each block, the set of branch guards known to hold on entry.
///
/// A branch `br c, T, E` in block `P` guards a successor `S` when `S` has
/// no other predecessor (so reaching `S` proves the branch outcome); the
/// guard then extends to every block dominated by `S`.
pub fn block_guards(f: &Function) -> Vec<Vec<Guard>> {
    let dt = DomTree::compute(f);
    let preds = f.predecessors();
    let mut sources: Vec<(BlockId, Guard)> = Vec::new();
    for (pi, blk) in f.blocks.iter().enumerate() {
        if dt.idom[pi].is_none() {
            continue;
        }
        if let Term::Br { cond, then, els } = blk.term {
            if then == els {
                continue;
            }
            for (succ, polarity) in [(then, true), (els, false)] {
                if preds[succ.0 as usize].len() == 1 {
                    sources.push((succ, Guard { cond, polarity }));
                }
            }
        }
    }
    let mut guards = vec![Vec::new(); f.blocks.len()];
    for (bi, out) in guards.iter_mut().enumerate() {
        if dt.idom[bi].is_none() {
            continue;
        }
        for &(s, g) in &sources {
            if dt.dominates(s, BlockId(bi as u32)) {
                out.push(g);
            }
        }
    }
    guards
}

// ---------------------------------------------------------------------------
// Domain trait + solver
// ---------------------------------------------------------------------------

/// A forward abstract domain: one fact per SSA value.
///
/// Lattice contract: `join` is the least upper bound, `top(f, v)` is a
/// sound fact for any runtime value of `v`'s declared type, and the
/// transfer function must be monotone. `widen(old, grown)` must return a
/// fact at least as high as `grown` whose repeated application terminates
/// (the solver additionally joins the result with `grown`, so returning
/// `top` is always acceptable).
pub trait Domain {
    /// The lattice element tracked per value.
    type Fact: Clone + PartialEq;

    /// The least precise sound fact for `v` (used for values the solver
    /// never reached, e.g. in unreachable blocks).
    fn top(&self, f: &Function, v: Value) -> Self::Fact;

    /// Abstract evaluation of non-phi instruction `v`. Returns `None` when
    /// an operand has no fact yet (optimistic bottom). Operand facts come
    /// through [`Ctx::get`], which applies branch-guard refinement.
    fn transfer(&self, f: &Function, v: Value, ctx: &Ctx<'_, Self>) -> Option<Self::Fact>;

    /// Least upper bound.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Accelerates a still-growing (loop-carried) fact. `grown` is
    /// `join(old, new)` and differs from `old`.
    fn widen(&self, f: &Function, v: Value, old: &Self::Fact, grown: &Self::Fact) -> Self::Fact;

    /// Sharpens `fact` (the current fact of `target`) with the knowledge
    /// that `cond` evaluated to `polarity`. Only sound to act when
    /// `target` is `cond` itself or a direct operand of `cond`; the
    /// default is the identity.
    fn refine(
        &self,
        _f: &Function,
        fact: Self::Fact,
        _state: &[Option<Self::Fact>],
        _guard: Guard,
        _target: Value,
    ) -> Self::Fact {
        fact
    }
}

/// Read-only view of the solver state handed to [`Domain::transfer`].
pub struct Ctx<'a, D: Domain + ?Sized> {
    f: &'a Function,
    dom: &'a D,
    state: &'a [Option<D::Fact>],
    guards: &'a [Guard],
}

impl<D: Domain + ?Sized> Ctx<'_, D> {
    /// The fact of `v`, sharpened by every branch guard active at the
    /// instruction being transferred. `None` while `v` is still bottom.
    pub fn get(&self, v: Value) -> Option<D::Fact> {
        let mut fact = self.state[v.0 as usize].clone()?;
        for &g in self.guards {
            fact = self.dom.refine(self.f, fact, self.state, g, v);
        }
        Some(fact)
    }

    /// The unrefined fact of `v`.
    pub fn raw(&self, v: Value) -> Option<&D::Fact> {
        self.state[v.0 as usize].as_ref()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Grow,
    Widen,
    Narrow,
}

/// Optimistic reverse-postorder passes before widening kicks in.
const GROW_PASSES: usize = 3;
/// Precision-recovery passes after the widened fixpoint.
const NARROW_PASSES: usize = 2;

/// Solves `dom` over `f`, returning one fact per SSA value.
pub fn solve<D: Domain>(dom: &D, f: &Function) -> Vec<D::Fact> {
    let rpo = f.reverse_postorder();
    let guards = block_guards(f);
    let mut state: Vec<Option<D::Fact>> = vec![None; f.insts.len()];

    for _ in 0..GROW_PASSES {
        if !run_pass(dom, f, &rpo, &guards, &mut state, Mode::Grow) {
            break;
        }
    }
    while run_pass(dom, f, &rpo, &guards, &mut state, Mode::Widen) {}
    for _ in 0..NARROW_PASSES {
        if !run_pass(dom, f, &rpo, &guards, &mut state, Mode::Narrow) {
            break;
        }
    }

    state
        .into_iter()
        .enumerate()
        .map(|(i, fact)| fact.unwrap_or_else(|| dom.top(f, Value(i as u32))))
        .collect()
}

fn run_pass<D: Domain>(
    dom: &D,
    f: &Function,
    rpo: &[BlockId],
    guards: &[Vec<Guard>],
    state: &mut [Option<D::Fact>],
    mode: Mode,
) -> bool {
    let mut changed = false;
    for &b in rpo {
        for &v in &f.block(b).insts {
            let new: Option<D::Fact> = match &f.inst(v).kind {
                InstKind::Phi(args) => {
                    // Join over incoming edges, sharpening each incoming
                    // value by the guards proven on its edge.
                    let mut acc: Option<D::Fact> = None;
                    for &(p, a) in args {
                        let Some(mut fa) = state[a.0 as usize].clone() else {
                            continue;
                        };
                        if let Some(g) = edge_guard(f, p, b) {
                            fa = dom.refine(f, fa, state, g, a);
                        }
                        for &g in &guards[p.0 as usize] {
                            fa = dom.refine(f, fa, state, g, a);
                        }
                        acc = Some(match acc {
                            None => fa,
                            Some(x) => dom.join(&x, &fa),
                        });
                    }
                    acc
                }
                _ => {
                    let ctx = Ctx {
                        f,
                        dom,
                        state: &*state,
                        guards: &guards[b.0 as usize],
                    };
                    dom.transfer(f, v, &ctx)
                }
            };
            let Some(new) = new else { continue };
            let idx = v.0 as usize;
            match &state[idx] {
                None => {
                    state[idx] = Some(new);
                    changed = true;
                }
                Some(old) => match mode {
                    Mode::Narrow => {
                        if *old != new {
                            state[idx] = Some(new);
                            changed = true;
                        }
                    }
                    Mode::Grow | Mode::Widen => {
                        let grown = dom.join(old, &new);
                        if grown != *old {
                            let next = if mode == Mode::Widen {
                                // Join keeps the post-fixpoint invariant
                                // even for domains whose widen is sloppy.
                                dom.join(&dom.widen(f, v, old, &grown), &grown)
                            } else {
                                grown
                            };
                            state[idx] = Some(next);
                            changed = true;
                        }
                    }
                },
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

/// Value-range (interval) domain over canonical values.
pub struct Intervals {
    rom_ranges: HashMap<u32, Range>,
}

impl Intervals {
    /// Builds the domain for `f`, precomputing exact ranges of ROM
    /// contents so table lookups stay narrow.
    pub fn new(f: &Function) -> Self {
        let rom_ranges = f
            .mems
            .iter()
            .enumerate()
            .filter_map(|(mi, m)| {
                m.rom.as_ref().map(|data| {
                    let lo = data.iter().copied().min().unwrap_or(0) as i128;
                    let hi = data.iter().copied().max().unwrap_or(0) as i128;
                    (mi as u32, Range { lo, hi })
                })
            })
            .collect();
        Intervals { rom_ranges }
    }
}

fn clamp(r: Range, ty: IntType) -> Range {
    let t = Range::of_type(ty);
    // If the true range fits the type, conversion preserves it; otherwise
    // wrapping can produce anything representable.
    if r.lo >= t.lo && r.hi <= t.hi {
        r
    } else {
        t
    }
}

fn transfer_bin(op: BinKind, ty: IntType, a: Range, b: Range) -> Range {
    let declared = Range::of_type(ty);
    let r = match op {
        BinKind::Add => Range {
            lo: a.lo + b.lo,
            hi: a.hi + b.hi,
        },
        BinKind::Sub => Range {
            lo: a.lo - b.hi,
            hi: a.hi - b.lo,
        },
        BinKind::Mul => {
            let cands = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            Range {
                lo: *cands.iter().min().expect("nonempty"),
                hi: *cands.iter().max().expect("nonempty"),
            }
        }
        BinKind::Div => {
            // Division shrinks magnitude (and by-zero yields 0).
            let m = a.lo.abs().max(a.hi.abs());
            Range { lo: -m, hi: m }
        }
        BinKind::Rem => {
            let m = b.lo.abs().max(b.hi.abs()).saturating_sub(1).max(0);
            if a.lo >= 0 {
                Range { lo: 0, hi: m }
            } else {
                Range { lo: -m, hi: m }
            }
        }
        BinKind::Shl => {
            if b.lo == b.hi && (0..63).contains(&b.lo) {
                let s = b.lo as u32;
                Range {
                    lo: a.lo << s,
                    hi: a.hi << s,
                }
            } else {
                declared
            }
        }
        BinKind::Shr => {
            if a.lo >= 0 && b.lo >= 0 {
                Range {
                    lo: a.lo >> b.hi.min(63) as u32,
                    hi: a.hi >> b.lo.min(63) as u32,
                }
            } else {
                declared
            }
        }
        BinKind::And => {
            if a.lo >= 0 || b.lo >= 0 {
                // Non-negative and: bounded by the smaller non-negative max.
                let hi = match (a.lo >= 0, b.lo >= 0) {
                    (true, true) => a.hi.min(b.hi),
                    (true, false) => a.hi,
                    (false, true) => b.hi,
                    _ => unreachable!(),
                };
                Range { lo: 0, hi }
            } else {
                declared
            }
        }
        BinKind::Or | BinKind::Xor => {
            if a.lo >= 0 && b.lo >= 0 {
                // Bounded by the next power of two above both maxima.
                let m = (a.hi.max(b.hi)).max(1);
                let bits = 128 - (m as u128).leading_zeros();
                Range {
                    lo: 0,
                    hi: ((1u128 << bits) - 1) as i128,
                }
            } else {
                declared
            }
        }
        BinKind::Eq | BinKind::Ne | BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge => {
            transfer_cmp(op, a, b)
        }
    };
    clamp(r, ty)
}

/// Comparison transfer: provably-true and provably-false comparisons fold
/// to `[1,1]` / `[0,0]`, which is what powers dead-branch detection.
fn transfer_cmp(op: BinKind, a: Range, b: Range) -> Range {
    const T: Range = Range { lo: 1, hi: 1 };
    const F: Range = Range { lo: 0, hi: 0 };
    const U: Range = Range { lo: 0, hi: 1 };
    let disjoint = a.hi < b.lo || b.hi < a.lo;
    let both_const_eq = a.is_const() && b.is_const() && a.lo == b.lo;
    match op {
        BinKind::Lt => {
            if a.hi < b.lo {
                T
            } else if a.lo >= b.hi {
                F
            } else {
                U
            }
        }
        BinKind::Le => {
            if a.hi <= b.lo {
                T
            } else if a.lo > b.hi {
                F
            } else {
                U
            }
        }
        BinKind::Gt => {
            if a.lo > b.hi {
                T
            } else if a.hi <= b.lo {
                F
            } else {
                U
            }
        }
        BinKind::Ge => {
            if a.lo >= b.hi {
                T
            } else if a.hi < b.lo {
                F
            } else {
                U
            }
        }
        BinKind::Eq => {
            if disjoint {
                F
            } else if both_const_eq {
                T
            } else {
                U
            }
        }
        BinKind::Ne => {
            if disjoint {
                T
            } else if both_const_eq {
                F
            } else {
                U
            }
        }
        _ => unreachable!("not a comparison"),
    }
}

fn swap_cmp(op: BinKind) -> BinKind {
    match op {
        BinKind::Lt => BinKind::Gt,
        BinKind::Le => BinKind::Ge,
        BinKind::Gt => BinKind::Lt,
        BinKind::Ge => BinKind::Le,
        other => other,
    }
}

fn negate_cmp(op: BinKind) -> BinKind {
    match op {
        BinKind::Eq => BinKind::Ne,
        BinKind::Ne => BinKind::Eq,
        BinKind::Lt => BinKind::Ge,
        BinKind::Ge => BinKind::Lt,
        BinKind::Le => BinKind::Gt,
        BinKind::Gt => BinKind::Le,
        other => other,
    }
}

/// Interval refinement by a branch guard. Acts only when `target` is the
/// condition itself or a direct operand of a comparison condition.
pub fn refine_range(
    f: &Function,
    fact: Range,
    lookup: &dyn Fn(Value) -> Option<Range>,
    guard: Guard,
    target: Value,
) -> Range {
    if guard.cond == target {
        let observed = if guard.polarity {
            Range { lo: 1, hi: 1 }
        } else {
            Range { lo: 0, hi: 0 }
        };
        return fact.intersect(observed).unwrap_or(fact);
    }
    let InstKind::Bin(op, a, b) = f.inst(guard.cond).kind else {
        return fact;
    };
    if !op.is_comparison() {
        return fact;
    }
    let (op, other) = if target == a && target != b {
        (op, b)
    } else if target == b && target != a {
        (swap_cmp(op), a)
    } else {
        return fact;
    };
    let op = if guard.polarity { op } else { negate_cmp(op) };
    let Some(r) = lookup(other) else { return fact };
    let mut refined = fact;
    match op {
        BinKind::Lt => refined.hi = refined.hi.min(r.hi - 1),
        BinKind::Le => refined.hi = refined.hi.min(r.hi),
        BinKind::Gt => refined.lo = refined.lo.max(r.lo + 1),
        BinKind::Ge => refined.lo = refined.lo.max(r.lo),
        BinKind::Eq => {
            refined.lo = refined.lo.max(r.lo);
            refined.hi = refined.hi.min(r.hi);
        }
        BinKind::Ne => {}
        _ => return fact,
    }
    if refined.lo > refined.hi {
        // Contradictory guard (dead path); keep the unrefined fact rather
        // than manufacturing an empty interval.
        fact
    } else {
        refined
    }
}

impl Domain for Intervals {
    type Fact = Range;

    fn top(&self, f: &Function, v: Value) -> Range {
        Range::of_type(f.inst(v).ty)
    }

    fn transfer(&self, f: &Function, v: Value, ctx: &Ctx<'_, Self>) -> Option<Range> {
        let inst = f.inst(v);
        let declared = Range::of_type(inst.ty);
        let r = match &inst.kind {
            InstKind::Const(c) => Range::exact(*c),
            InstKind::Param(_) => declared,
            InstKind::Phi(_) => return None, // handled by the solver
            InstKind::Bin(op, a, b) => transfer_bin(*op, inst.ty, ctx.get(*a)?, ctx.get(*b)?),
            InstKind::Un(UnKind::Neg, a) => {
                let ra = ctx.get(*a)?;
                clamp(
                    Range {
                        lo: -ra.hi,
                        hi: -ra.lo,
                    },
                    inst.ty,
                )
            }
            InstKind::Un(UnKind::Not, _) => declared,
            InstKind::Select { t, f: fv, .. } => match (ctx.get(*t), ctx.get(*fv)) {
                (Some(rt), Some(rf)) => rt.union(rf),
                (Some(rt), None) => rt,
                (None, Some(rf)) => rf,
                (None, None) => return None,
            },
            InstKind::Cast { val, .. } => clamp(ctx.get(*val)?, inst.ty),
            InstKind::Load { mem, .. } => {
                self.rom_ranges.get(&mem.0).copied().unwrap_or(declared)
            }
            InstKind::Store { .. } => declared,
        };
        // Canonical form never leaves the declared range.
        Some(Range {
            lo: r.lo.max(declared.lo),
            hi: r.hi.min(declared.hi),
        })
    }

    fn join(&self, a: &Range, b: &Range) -> Range {
        a.union(*b)
    }

    fn widen(&self, f: &Function, v: Value, old: &Range, grown: &Range) -> Range {
        // Directional widening: only the bound that actually moved jumps to
        // the declared extreme. Loop counters with a stable start keep it.
        let d = Range::of_type(f.inst(v).ty);
        Range {
            lo: if grown.lo < old.lo { d.lo } else { old.lo },
            hi: if grown.hi > old.hi { d.hi } else { old.hi },
        }
    }

    fn refine(
        &self,
        f: &Function,
        fact: Range,
        state: &[Option<Range>],
        guard: Guard,
        target: Value,
    ) -> Range {
        refine_range(f, fact, &|v| state[v.0 as usize], guard, target)
    }
}

/// Interval facts for every value of `f` (guard-refined, widened, then
/// narrowed).
pub fn value_ranges(f: &Function) -> Vec<Range> {
    solve(&Intervals::new(f), f)
}

// ---------------------------------------------------------------------------
// Known-bits domain
// ---------------------------------------------------------------------------

/// Tri-state bit knowledge over the canonical 64-bit form of a value: each
/// bit is known-0, known-1, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bits {
    /// Mask of bits known to be 0.
    pub zeros: u64,
    /// Mask of bits known to be 1.
    pub ones: u64,
}

impl Bits {
    /// All 64 bits known: the bits of one constant.
    pub fn exact(v: i64) -> Bits {
        Bits {
            zeros: !(v as u64),
            ones: v as u64,
        }
    }

    /// Nothing known.
    pub fn unknown() -> Bits {
        Bits { zeros: 0, ones: 0 }
    }

    /// The constant value, when every bit is known.
    pub fn as_const(self) -> Option<i64> {
        (self.zeros | self.ones == u64::MAX).then_some(self.ones as i64)
    }

    /// Minimal width (1..=64) that preserves the value under the canonical
    /// re-extension rule for the given signedness.
    pub fn needed_width(self, signed: bool) -> u16 {
        let hz = self.zeros.leading_ones() as u16;
        let ho = self.ones.leading_ones() as u16;
        let w = if !signed {
            64 - hz.min(63)
        } else if hz > 0 {
            // Top hz bits are zero: keep one of them as the sign bit.
            64 - hz + 1
        } else if ho > 0 {
            // Top ho bits are one: sign-extension regenerates them.
            64 - ho + 1
        } else {
            64
        };
        w.clamp(1, 64)
    }
}

/// Renders `b` consistent with the canonical form of a `ty`-typed value:
/// bits above the width are zero (unsigned) or copies of the sign bit.
fn canon_bits(ty: IntType, b: Bits) -> Bits {
    let mask = if ty.width == 64 {
        u64::MAX
    } else {
        (1u64 << ty.width) - 1
    };
    let mut zeros = b.zeros & mask;
    let mut ones = b.ones & mask;
    if ty.width < 64 {
        if !ty.signed {
            zeros |= !mask;
        } else {
            let sign = 1u64 << (ty.width - 1);
            if zeros & sign != 0 {
                zeros |= !mask;
            } else if ones & sign != 0 {
                ones |= !mask;
            }
        }
    }
    Bits { zeros, ones }
}

/// Known-bits domain (stateless).
pub struct KnownBits;

impl Domain for KnownBits {
    type Fact = Bits;

    fn top(&self, f: &Function, v: Value) -> Bits {
        canon_bits(f.inst(v).ty, Bits::unknown())
    }

    fn transfer(&self, f: &Function, v: Value, ctx: &Ctx<'_, Self>) -> Option<Bits> {
        let inst = f.inst(v);
        let b = match &inst.kind {
            InstKind::Const(c) => Bits::exact(*c),
            InstKind::Phi(_) => return None, // handled by the solver
            InstKind::Bin(BinKind::And, a, bb) => {
                let (x, y) = (ctx.get(*a)?, ctx.get(*bb)?);
                Bits {
                    zeros: x.zeros | y.zeros,
                    ones: x.ones & y.ones,
                }
            }
            InstKind::Bin(BinKind::Or, a, bb) => {
                let (x, y) = (ctx.get(*a)?, ctx.get(*bb)?);
                Bits {
                    zeros: x.zeros & y.zeros,
                    ones: x.ones | y.ones,
                }
            }
            InstKind::Bin(BinKind::Xor, a, bb) => {
                let (x, y) = (ctx.get(*a)?, ctx.get(*bb)?);
                Bits {
                    zeros: (x.zeros & y.zeros) | (x.ones & y.ones),
                    ones: (x.zeros & y.ones) | (x.ones & y.zeros),
                }
            }
            InstKind::Bin(BinKind::Shl, a, bb) => {
                let x = ctx.get(*a)?;
                match ctx.get(*bb)?.as_const() {
                    Some(sh) if (0..inst.ty.width as i64).contains(&sh) => {
                        let sh = sh as u32;
                        Bits {
                            zeros: (x.zeros << sh) | ((1u64 << sh) - 1),
                            ones: x.ones << sh,
                        }
                    }
                    _ => Bits::unknown(),
                }
            }
            InstKind::Un(UnKind::Not, a) => {
                let x = ctx.get(*a)?;
                Bits {
                    zeros: x.ones,
                    ones: x.zeros,
                }
            }
            InstKind::Select { t, f: fv, .. } => match (ctx.get(*t), ctx.get(*fv)) {
                (Some(x), Some(y)) => self.join(&x, &y),
                (Some(x), None) => x,
                (None, Some(y)) => y,
                (None, None) => return None,
            },
            InstKind::Cast { val, .. } => ctx.get(*val)?,
            InstKind::Load { mem, .. } => match &f.mems[mem.0 as usize].rom {
                Some(data) if !data.is_empty() => {
                    let mut acc = Bits {
                        zeros: u64::MAX,
                        ones: u64::MAX,
                    };
                    for &e in data {
                        acc.zeros &= !(e as u64);
                        acc.ones &= e as u64;
                    }
                    acc
                }
                _ => Bits::unknown(),
            },
            // Arithmetic, shifts by unknown amounts, parameters, stores,
            // comparisons: no bit-level knowledge tracked (canonicalization
            // below still pins the bits above the declared width).
            _ => Bits::unknown(),
        };
        Some(canon_bits(inst.ty, b))
    }

    fn join(&self, a: &Bits, b: &Bits) -> Bits {
        Bits {
            zeros: a.zeros & b.zeros,
            ones: a.ones & b.ones,
        }
    }

    fn widen(&self, f: &Function, v: Value, _old: &Bits, _grown: &Bits) -> Bits {
        self.top(f, v)
    }
}

/// Known-bit facts for every value of `f`.
pub fn known_bits(f: &Function) -> Vec<Bits> {
    solve(&KnownBits, f)
}

// ---------------------------------------------------------------------------
// May-written memory analysis
// ---------------------------------------------------------------------------

/// For every block and memory, the interval of indices that MAY have been
/// stored to on some path reaching the block's entry. `None` means the
/// memory is definitely still untouched (no store on any path) — the
/// signal the uninitialized-read lint keys on.
pub fn may_written_on_entry(
    f: &Function,
    addr_ranges: &[Range],
) -> Vec<Vec<Option<Range>>> {
    let nb = f.blocks.len();
    let nm = f.mems.len();
    let rpo = f.reverse_postorder();
    let preds = f.predecessors();
    let mut entry: Vec<Vec<Option<Range>>> = vec![vec![None; nm]; nb];
    let mut exit: Vec<Vec<Option<Range>>> = vec![vec![None; nm]; nb];
    loop {
        let mut changed = false;
        for &b in &rpo {
            let bi = b.0 as usize;
            let mut ent: Vec<Option<Range>> = vec![None; nm];
            for &p in &preds[bi] {
                for (m, slot) in ent.iter_mut().enumerate() {
                    *slot = match (*slot, exit[p.0 as usize][m]) {
                        (x, None) => x,
                        (None, y) => y,
                        (Some(x), Some(y)) => Some(x.union(y)),
                    };
                }
            }
            let mut ex = ent.clone();
            for &v in &f.block(b).insts {
                if let InstKind::Store { mem, addr, .. } = f.inst(v).kind {
                    let r = addr_ranges[addr.0 as usize];
                    let slot = &mut ex[mem.0 as usize];
                    *slot = Some(match *slot {
                        None => r,
                        Some(x) => x.union(r),
                    });
                }
            }
            if ent != entry[bi] || ex != exit[bi] {
                entry[bi] = ent;
                exit[bi] = ex;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use crate::lower::lower_function;

    fn lowered(src: &str, name: &str) -> Function {
        let hir = compile_to_hir(src).expect("frontend ok");
        let (id, _) = hir.func_by_name(name).expect("exists");
        lower_function(&hir, id).expect("lowers")
    }

    fn ret_value(f: &Function) -> Value {
        for b in &f.blocks {
            if let Term::Ret(Some(v)) = b.term {
                return v;
            }
        }
        panic!("no return value");
    }

    #[test]
    fn counted_loop_counter_narrows_via_guards() {
        let f = lowered(
            "int f() { int i = 0; while (i < 16) { i = i + 1; } return i; }",
            "f",
        );
        let ranges = value_ranges(&f);
        let r = ranges[ret_value(&f).0 as usize];
        assert!(
            r.lo == 0 && r.hi <= 16,
            "counter range [{}, {}] not narrowed",
            r.lo,
            r.hi
        );
    }

    #[test]
    fn loop_accumulator_stays_wide() {
        let f = lowered(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            "f",
        );
        let ranges = value_ranges(&f);
        let r = ranges[ret_value(&f).0 as usize];
        assert!(r.needed_width(true) >= 31, "unsound narrow range {r:?}");
    }

    #[test]
    fn known_bits_track_masks() {
        let f = lowered("int f(int x) { return x & 15; }", "f");
        let bits = known_bits(&f);
        let b = bits[ret_value(&f).0 as usize];
        assert_eq!(b.zeros & 0xF, 0, "low bits must stay unknown");
        assert_eq!(b.zeros | 0xF, u64::MAX, "high bits must be known zero");
        assert_eq!(b.needed_width(true), 5);
        assert_eq!(b.needed_width(false), 4);
    }

    #[test]
    fn known_bits_fold_constants() {
        let f = lowered("int f() { return (5 << 2) | 2; }", "f");
        let bits = known_bits(&f);
        assert_eq!(bits[ret_value(&f).0 as usize].as_const(), Some(22));
    }

    #[test]
    fn provable_comparison_folds_to_constant() {
        let f = lowered("int f(uint<4> x) { if (x < 100) { return 1; } return 2; }", "f");
        let ranges = value_ranges(&f);
        let mut found = false;
        for b in &f.blocks {
            if let Term::Br { cond, .. } = b.term {
                let r = ranges[cond.0 as usize];
                assert_eq!((r.lo, r.hi), (1, 1), "x < 100 is always true for u4");
                found = true;
            }
        }
        assert!(found, "no branch in lowered function");
    }

    #[test]
    fn may_written_tracks_store_intervals() {
        let f = lowered(
            "int f(int k) {
                int a[8];
                for (int i = 0; i < 4; i++) { a[i] = i; }
                return a[k & 7];
            }",
            "f",
        );
        let ranges = value_ranges(&f);
        let written = may_written_on_entry(&f, &ranges);
        // At the block performing the final load, indices [0, 3] (and only
        // those) may have been written.
        let mut checked = false;
        for (bi, blk) in f.blocks.iter().enumerate() {
            let has_load = blk
                .insts
                .iter()
                .any(|&v| matches!(f.inst(v).kind, InstKind::Load { .. }));
            if !has_load {
                continue;
            }
            let w = written[bi][0].expect("loop stores reach the load");
            assert!(w.lo >= 0 && w.hi <= 4, "written interval {w:?}");
            checked = true;
        }
        assert!(checked, "no load found");
    }

    #[test]
    fn entry_block_has_nothing_written() {
        let f = lowered(
            "int f() { int a[4]; a[0] = 1; return a[0]; }",
            "f",
        );
        let ranges = value_ranges(&f);
        let written = may_written_on_entry(&f, &ranges);
        assert!(written[f.entry.0 as usize].iter().all(Option::is_none));
    }

    #[test]
    fn range_helpers() {
        let a = Range { lo: 0, hi: 10 };
        let b = Range { lo: 5, hi: 20 };
        assert_eq!(a.union(b), Range { lo: 0, hi: 20 });
        assert_eq!(a.intersect(b), Some(Range { lo: 5, hi: 10 }));
        assert_eq!(
            a.intersect(Range { lo: 11, hi: 12 }),
            None
        );
        assert!(Range::exact(3).is_const());
    }
}
