//! IR well-formedness verifier.
//!
//! Checks structural invariants (valid indices, one home block per
//! instruction, terminated blocks), SSA invariants (definitions dominate
//! uses, phi arguments match predecessors), and type invariants (operand
//! widths agree where required).

use crate::dom::DomTree;
use crate::ir::*;
use std::collections::HashMap;
use std::fmt;

/// A verifier failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Description of the violated invariant.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir verification failed: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

fn fail(message: impl Into<String>) -> Result<(), VerifyError> {
    Err(VerifyError {
        message: message.into(),
    })
}

/// Verifies `f`, returning the first violated invariant.
///
/// # Errors
///
/// Returns a [`VerifyError`] describing the first problem found.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    let nv = f.insts.len();
    let nb = f.blocks.len();

    // Every instruction appears exactly once, in its recorded block.
    let mut seen = vec![false; nv];
    for (bi, block) in f.blocks.iter().enumerate() {
        for &v in &block.insts {
            if v.0 as usize >= nv {
                return fail(format!("{v} out of range"));
            }
            if seen[v.0 as usize] {
                return fail(format!("{v} appears in more than one block"));
            }
            seen[v.0 as usize] = true;
            if f.inst(v).block.0 as usize != bi {
                return fail(format!("{v} recorded in {} but listed in b{bi}", f.inst(v).block));
            }
        }
        // Phis must be a prefix of the block.
        let mut in_prefix = true;
        for &v in &block.insts {
            let is_phi = matches!(f.inst(v).kind, InstKind::Phi(_));
            if is_phi && !in_prefix {
                return fail(format!("phi {v} after non-phi in b{bi}"));
            }
            if !is_phi {
                in_prefix = false;
            }
        }
        // Terminator targets in range; no Unreachable in finished IR.
        match &block.term {
            Term::Unreachable => return fail(format!("b{bi} has no terminator")),
            Term::Br { cond, then, els } => {
                if then.0 as usize >= nb || els.0 as usize >= nb {
                    return fail(format!("b{bi} branch target out of range"));
                }
                if f.inst(*cond).ty.width != 1 {
                    return fail(format!("b{bi} branch condition {cond} is not u1"));
                }
            }
            Term::Jump(t) => {
                if t.0 as usize >= nb {
                    return fail(format!("b{bi} jump target out of range"));
                }
            }
            Term::Ret(Some(v)) => {
                let Some(rt) = f.ret_ty else {
                    return fail("ret with value in void function".to_string());
                };
                if f.inst(*v).ty != rt {
                    return fail(format!(
                        "return value {v} has type {} but function returns {rt}",
                        f.inst(*v).ty
                    ));
                }
            }
            Term::Ret(None) => {
                if f.ret_ty.is_some() {
                    return fail("bare ret in non-void function".to_string());
                }
            }
        }
    }

    // Operand and type checks.
    let preds = f.predecessors();
    for (i, inst) in f.insts.iter().enumerate() {
        let v = Value(i as u32);
        if !seen[i] {
            // Orphan instructions are tolerated only if truly unused.
            let mut used = false;
            for other in &f.insts {
                other.kind.for_each_operand(|o| used |= o == v);
            }
            if used {
                return fail(format!("{v} is used but not placed in any block"));
            }
            continue;
        }
        let mut bad = None;
        inst.kind.for_each_operand(|o| {
            if o.0 as usize >= nv {
                bad = Some(format!("{v} references out-of-range {o}"));
            } else if !f.inst(o).kind.has_result() {
                bad = Some(format!("{v} uses non-value {o}"));
            }
        });
        if let Some(msg) = bad {
            return fail(msg);
        }
        match &inst.kind {
            InstKind::Bin(op, a, b) => {
                let (ta, tb) = (f.inst(*a).ty, f.inst(*b).ty);
                if op.is_comparison() {
                    if ta != tb {
                        return fail(format!("{v}: comparison operand types differ ({ta} vs {tb})"));
                    }
                    if inst.ty.width != 1 {
                        return fail(format!("{v}: comparison result must be u1"));
                    }
                } else if matches!(op, BinKind::Shl | BinKind::Shr) {
                    if ta != inst.ty {
                        return fail(format!("{v}: shift lhs type {ta} != result {}", inst.ty));
                    }
                } else if ta != inst.ty || tb != inst.ty {
                    return fail(format!(
                        "{v}: operand types ({ta}, {tb}) do not match result {}",
                        inst.ty
                    ));
                }
            }
            InstKind::Un(_, a) => {
                if f.inst(*a).ty != inst.ty {
                    return fail(format!("{v}: unary operand type mismatch"));
                }
            }
            InstKind::Select { cond, t, f: fv } => {
                if f.inst(*cond).ty.width != 1 {
                    return fail(format!("{v}: select condition is not u1"));
                }
                if f.inst(*t).ty != inst.ty || f.inst(*fv).ty != inst.ty {
                    return fail(format!("{v}: select arm type mismatch"));
                }
            }
            InstKind::Cast { from, val } => {
                if f.inst(*val).ty != *from {
                    return fail(format!("{v}: cast `from` does not match operand type"));
                }
            }
            InstKind::Load { mem, .. } => {
                if mem.0 as usize >= f.mems.len() {
                    return fail(format!("{v}: memory out of range"));
                }
                if f.mem(*mem).elem != inst.ty {
                    return fail(format!("{v}: load type != memory element type"));
                }
            }
            InstKind::Store { mem, value, .. } => {
                if mem.0 as usize >= f.mems.len() {
                    return fail(format!("{v}: memory out of range"));
                }
                if f.inst(*value).ty != f.mem(*mem).elem {
                    return fail(format!("{v}: store value type != memory element type"));
                }
            }
            InstKind::Phi(args) => {
                let mut expected: Vec<BlockId> = preds[inst.block.0 as usize].clone();
                expected.sort_unstable();
                expected.dedup();
                let mut got: Vec<BlockId> = args.iter().map(|(b, _)| *b).collect();
                got.sort_unstable();
                got.dedup();
                if expected != got {
                    return fail(format!(
                        "{v}: phi predecessors {got:?} do not match CFG {expected:?}"
                    ));
                }
                for (_, a) in args {
                    if f.inst(*a).ty != inst.ty {
                        return fail(format!("{v}: phi argument type mismatch"));
                    }
                }
            }
            InstKind::Param(_) | InstKind::Const(_) => {}
        }
    }

    // Dominance: defs dominate uses.
    let dt = DomTree::compute(f);
    let mut position: HashMap<Value, (BlockId, usize)> = HashMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for (pos, &v) in block.insts.iter().enumerate() {
            position.insert(v, (BlockId(bi as u32), pos));
        }
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        if dt.idom[bi].is_none() && b != f.entry {
            continue; // unreachable block: skip dominance checks
        }
        for (pos, &v) in block.insts.iter().enumerate() {
            let inst = f.inst(v);
            if let InstKind::Phi(args) = &inst.kind {
                for (pred, a) in args {
                    if let Some(&(db, _)) = position.get(a) {
                        if !dt.dominates(db, *pred) {
                            return fail(format!(
                                "{v}: phi arg {a} from {pred} not dominated by its def in {db}"
                            ));
                        }
                    }
                }
                continue;
            }
            let mut bad = None;
            inst.kind.for_each_operand(|o| {
                if bad.is_some() {
                    return;
                }
                match position.get(&o) {
                    Some(&(db, dpos)) => {
                        let ok = if db == b { dpos < pos } else { dt.dominates(db, b) };
                        if !ok {
                            bad = Some(format!("{v}: use of {o} not dominated by its definition"));
                        }
                    }
                    None => bad = Some(format!("{v}: use of unplaced {o}")),
                }
            });
            if let Some(msg) = bad {
                return fail(msg);
            }
        }
        if let Term::Br { cond, .. } = &block.term {
            if let Some(&(db, _)) = position.get(cond) {
                if db != b && !dt.dominates(db, b) {
                    return fail(format!("branch condition {cond} does not dominate b{bi}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_function;
    use chls_frontend::compile_to_hir;
    use chls_frontend::IntType;

    fn verify_src(src: &str, name: &str) {
        let hir = compile_to_hir(src).expect("frontend ok");
        let (id, _) = hir.func_by_name(name).expect("function exists");
        let f = lower_function(&hir, id).expect("lowering ok");
        if let Err(e) = verify(&f) {
            panic!("{e}\n{f}");
        }
    }

    #[test]
    fn lowered_functions_verify() {
        verify_src("int f(int a, int b) { return a + b; }", "f");
        verify_src(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            "f",
        );
        verify_src(
            "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
            "gcd",
        );
        verify_src(
            "int f(int a[8], int n) {
                int best = a[0];
                for (int i = 1; i < n; i++) if (a[i] > best) best = a[i];
                return best;
            }",
            "f",
        );
        verify_src(
            "int f(int x) {
                int r = 0;
                if (x > 10) { if (x > 100) r = 3; else r = 2; } else r = 1;
                return r;
            }",
            "f",
        );
    }

    #[test]
    fn missing_terminator_caught() {
        let f = Function::new("bad");
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("no terminator"));
    }

    #[test]
    fn type_mismatch_caught() {
        let mut f = Function::new("bad");
        let b = f.entry;
        let a = f.add_inst(b, InstKind::Const(1), IntType::new(8, false));
        let c = f.add_inst(b, InstKind::Const(1), IntType::new(16, false));
        let s = f.add_inst(b, InstKind::Bin(BinKind::Add, a, c), IntType::new(16, false));
        f.ret_ty = Some(IntType::new(16, false));
        f.block_mut(b).term = Term::Ret(Some(s));
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("do not match"), "{err}");
    }

    #[test]
    fn branch_on_wide_value_caught() {
        let mut f = Function::new("bad");
        let b0 = f.entry;
        let b1 = f.add_block();
        let c = f.add_inst(b0, InstKind::Const(1), IntType::new(32, true));
        f.block_mut(b0).term = Term::Br {
            cond: c,
            then: b1,
            els: b1,
        };
        f.block_mut(b1).term = Term::Ret(None);
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("not u1"), "{err}");
    }

    #[test]
    fn use_before_def_caught() {
        let mut f = Function::new("bad");
        let b = f.entry;
        // v0 uses v1 which is defined after it.
        let ty = IntType::new(32, true);
        let v0 = Value(0);
        let _ = v0;
        let use_first = f.add_inst(b, InstKind::Un(UnKind::Neg, Value(1)), ty);
        let _def_later = f.add_inst(b, InstKind::Const(3), ty);
        f.ret_ty = Some(ty);
        f.block_mut(b).term = Term::Ret(Some(use_first));
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("dominated"), "{err}");
    }
}
