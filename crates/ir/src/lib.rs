//! # chls-ir
//!
//! The SSA CFG intermediate representation shared by the compiler-scheduled
//! synthesis backends (Cones, Transmogrifier C, C2Verilog, CASH), plus:
//!
//! * [`lower`] — typed HIR → SSA IR (Braun-style on-the-fly SSA);
//! * [`dataflow`] — forward abstract-interpretation engine (interval and
//!   known-bits domains, branch-guard refinement, may-written memory);
//! * [`dom`] — dominator tree and dominance frontiers;
//! * [`loops`] — natural-loop detection;
//! * [`exec`] — a reference executor that also produces the dynamic
//!   dependence traces used by the ILP-limit experiment;
//! * [`verify`] — structural/SSA/type verifier.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use chls_ir::exec::{execute, ArgValue, ExecOptions};
//!
//! let hir = chls_frontend::compile_to_hir(
//!     "int gcd(int a, int b) {
//!          while (b != 0) { int t = b; b = a % b; a = t; }
//!          return a;
//!      }",
//! )?;
//! let (id, _) = hir.func_by_name("gcd").expect("exists");
//! let f = chls_ir::lower::lower_function(&hir, id)?;
//! chls_ir::verify::verify(&f)?;
//! let r = execute(&f, &[ArgValue::Scalar(48), ArgValue::Scalar(36)], &ExecOptions::default())?;
//! assert_eq!(r.ret, Some(12));
//! # Ok(())
//! # }
//! ```

pub mod dataflow;
pub mod dom;
pub mod exec;
pub mod ir;
pub mod loops;
pub mod lower;
pub mod verify;

pub use ir::{
    eval_bin, eval_cast, eval_un, BinKind, BlockId, Function, InstData, InstKind, MemId, MemInfo,
    MemSource, Term, UnKind, Value,
};
pub use lower::{lower_function, LowerError};
