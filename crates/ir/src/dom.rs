//! Dominator tree and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy "simple, fast dominance" algorithm,
//! which is near-linear on the small CFGs synthesis produces.

use crate::ir::{BlockId, Function};

/// Immediate-dominator tree plus dominance frontiers for a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of `b`; the entry block is its
    /// own idom. Unreachable blocks have `None`.
    pub idom: Vec<Option<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder (reachable only).
    pub rpo: Vec<BlockId>,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let rpo = f.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.0 as usize] = Some(f.entry);

        let intersect = |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed in rpo order");
                }
                while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed in rpo order");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }

        // Dominance frontiers (Cooper et al. fig. 5).
        let mut frontier = vec![Vec::new(); n];
        for &b in &rpo {
            let bp = &preds[b.0 as usize];
            if bp.len() < 2 {
                continue;
            }
            let Some(b_idom) = idom[b.0 as usize] else {
                continue;
            };
            for &p in bp {
                if idom[p.0 as usize].is_none() {
                    continue;
                }
                let mut runner = p;
                while runner != b_idom {
                    let fr = &mut frontier[runner.0 as usize];
                    if !fr.contains(&b) {
                        fr.push(b);
                    }
                    runner = idom[runner.0 as usize].expect("reachable");
                }
            }
        }

        DomTree {
            idom,
            frontier,
            rpo,
        }
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{InstKind, Term};
    use chls_frontend::IntType;

    /// Builds the classic diamond: b0 -> {b1, b2} -> b3.
    fn diamond() -> Function {
        let mut f = Function::new("d");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let c = f.add_inst(b0, InstKind::Const(1), IntType::new(1, false));
        f.block_mut(b0).term = Term::Br {
            cond: c,
            then: b1,
            els: b2,
        };
        f.block_mut(b1).term = Term::Jump(b3);
        f.block_mut(b2).term = Term::Jump(b3);
        f.block_mut(b3).term = Term::Ret(None);
        f
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom[0], Some(BlockId(0)));
        assert_eq!(dt.idom[1], Some(BlockId(0)));
        assert_eq!(dt.idom[2], Some(BlockId(0)));
        assert_eq!(dt.idom[3], Some(BlockId(0)));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.frontier[1], vec![BlockId(3)]);
        assert_eq!(dt.frontier[2], vec![BlockId(3)]);
        assert!(dt.frontier[0].is_empty());
        assert!(dt.frontier[3].is_empty());
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(dt.dominates(BlockId(1), BlockId(1)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(2)));
    }

    #[test]
    fn loop_frontier_contains_header() {
        // b0 -> b1 (header) -> b2 -> b1, b1 -> b3.
        let mut f = Function::new("l");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let c = f.add_inst(b1, InstKind::Const(1), IntType::new(1, false));
        f.block_mut(b0).term = Term::Jump(b1);
        f.block_mut(b1).term = Term::Br {
            cond: c,
            then: b2,
            els: b3,
        };
        f.block_mut(b2).term = Term::Jump(b1);
        f.block_mut(b3).term = Term::Ret(None);
        let dt = DomTree::compute(&f);
        // The loop body's frontier contains the header itself.
        assert_eq!(dt.frontier[2], vec![b1]);
        assert!(dt.frontier[1].contains(&b1));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = Function::new("u");
        let b0 = f.entry;
        let _dead = f.add_block();
        f.block_mut(b0).term = Term::Ret(None);
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom[1], None);
        assert_eq!(dt.rpo, vec![b0]);
    }
}
