//! Core IR data structures.
//!
//! The IR is a conventional CFG of basic blocks in SSA form:
//!
//! * every instruction produces at most one [`Value`] (its own index);
//! * scalar dataflow is explicit through instruction operands and phis;
//! * arrays live in [`MemInfo`] memories accessed by `Load`/`Store` with an
//!   element index — there are **no pointers** at this level (the paper's
//!   pointer problem is handled before lowering, see `chls-opt`);
//! * control flow ends each block with exactly one [`Term`].
//!
//! Signedness is carried by each instruction's [`IntType`], so there is one
//! `Div` whose behaviour depends on its type, rather than `SDiv`/`UDiv`
//! pairs.

use chls_frontend::hir::MemBank;
use chls_frontend::{IntType, Span};
use std::fmt;

/// Index of an instruction; also the SSA value it defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u32);

/// Index of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a memory (array) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Two-operand operations. Signedness comes from the instruction type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields 0.
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    /// Left shift (shift amounts are taken modulo 64 then clamp to width).
    Shl,
    /// Right shift: arithmetic when signed, logical when unsigned.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Equality; result is `u1`.
    Eq,
    /// Inequality; result is `u1`.
    Ne,
    /// Less-than (per operand signedness); result is `u1`.
    Lt,
    /// Less-or-equal; result is `u1`.
    Le,
    /// Greater-than; result is `u1`.
    Gt,
    /// Greater-or-equal; result is `u1`.
    Ge,
}

impl BinKind {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinKind::Eq | BinKind::Ne | BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge
        )
    }

    /// True when `a op b == b op a`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinKind::Add
                | BinKind::Mul
                | BinKind::And
                | BinKind::Or
                | BinKind::Xor
                | BinKind::Eq
                | BinKind::Ne
        )
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinKind::Add => "add",
            BinKind::Sub => "sub",
            BinKind::Mul => "mul",
            BinKind::Div => "div",
            BinKind::Rem => "rem",
            BinKind::Shl => "shl",
            BinKind::Shr => "shr",
            BinKind::And => "and",
            BinKind::Or => "or",
            BinKind::Xor => "xor",
            BinKind::Eq => "eq",
            BinKind::Ne => "ne",
            BinKind::Lt => "lt",
            BinKind::Le => "le",
            BinKind::Gt => "gt",
            BinKind::Ge => "ge",
        }
    }
}

/// One-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnKind {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
}

/// Instruction payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// The `i`-th scalar function parameter.
    Param(usize),
    /// An integer constant (canonical form for the instruction type).
    Const(i64),
    /// Binary operation.
    Bin(BinKind, Value, Value),
    /// Unary operation.
    Un(UnKind, Value),
    /// `cond ? t : f` — a hardware multiplexer.
    Select {
        /// `u1` condition.
        cond: Value,
        /// Value when 1.
        t: Value,
        /// Value when 0.
        f: Value,
    },
    /// Width/signedness conversion from the operand's type (`from`) to the
    /// instruction's type.
    Cast {
        /// Operand type before conversion.
        from: IntType,
        /// Operand.
        val: Value,
    },
    /// Read `mem[addr]`.
    Load {
        /// Which memory.
        mem: MemId,
        /// Element index.
        addr: Value,
    },
    /// Write `mem[addr] = value`. Defines no meaningful value.
    Store {
        /// Which memory.
        mem: MemId,
        /// Element index.
        addr: Value,
        /// Stored value.
        value: Value,
    },
    /// SSA phi: one incoming value per predecessor block.
    Phi(Vec<(BlockId, Value)>),
}

impl InstKind {
    /// True for instructions whose result is meaningful.
    pub fn has_result(&self) -> bool {
        !matches!(self, InstKind::Store { .. })
    }

    /// True for loads and stores.
    pub fn touches_memory(&self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Store { .. })
    }

    /// Visits every operand value.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Param(_) | InstKind::Const(_) => {}
            InstKind::Bin(_, a, b) => {
                f(*a);
                f(*b);
            }
            InstKind::Un(_, a) | InstKind::Cast { val: a, .. } => f(*a),
            InstKind::Select { cond, t, f: fv } => {
                f(*cond);
                f(*t);
                f(*fv);
            }
            InstKind::Load { addr, .. } => f(*addr),
            InstKind::Store { addr, value, .. } => {
                f(*addr);
                f(*value);
            }
            InstKind::Phi(args) => {
                for (_, v) in args {
                    f(*v);
                }
            }
        }
    }

    /// Rewrites every operand value through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            InstKind::Param(_) | InstKind::Const(_) => {}
            InstKind::Bin(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            InstKind::Un(_, a) | InstKind::Cast { val: a, .. } => *a = f(*a),
            InstKind::Select { cond, t, f: fv } => {
                *cond = f(*cond);
                *t = f(*t);
                *fv = f(*fv);
            }
            InstKind::Load { addr, .. } => *addr = f(*addr),
            InstKind::Store { addr, value, .. } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            InstKind::Phi(args) => {
                for (_, v) in args {
                    *v = f(*v);
                }
            }
        }
    }
}

/// An instruction: payload plus result type and owning block.
#[derive(Debug, Clone, PartialEq)]
pub struct InstData {
    /// Payload.
    pub kind: InstKind,
    /// Result type (comparisons are `u1`; stores carry their value type).
    pub ty: IntType,
    /// Owning block.
    pub block: BlockId,
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a `u1` value.
    Br {
        /// Condition.
        cond: Value,
        /// Target when 1.
        then: BlockId,
        /// Target when 0.
        els: BlockId,
    },
    /// Function return.
    Ret(Option<Value>),
    /// Placeholder used during construction; invalid in finished IR.
    Unreachable,
}

impl Term {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jump(b) => vec![*b],
            Term::Br { then, els, .. } => vec![*then, *els],
            Term::Ret(_) | Term::Unreachable => vec![],
        }
    }
}

/// A basic block: ordered instruction list plus terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockData {
    /// Instructions in program order (phis first).
    pub insts: Vec<Value>,
    /// Terminator.
    pub term: Term,
}

/// Where a memory's storage comes from, for simulation and reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemSource {
    /// Bound to the caller's `idx`-th argument (an array parameter).
    Param(usize),
    /// A local array, zero-initialized.
    Local,
    /// A constant ROM.
    Rom,
}

/// A memory: one source array.
#[derive(Debug, Clone, PartialEq)]
pub struct MemInfo {
    /// Source-level name (for reports and Verilog).
    pub name: String,
    /// Element type.
    pub elem: IntType,
    /// Number of elements.
    pub len: usize,
    /// Constant contents for ROMs.
    pub rom: Option<Vec<i64>>,
    /// Banking request from `#pragma memory`.
    pub bank: MemBank,
    /// Storage origin.
    pub source: MemSource,
}

/// A function in SSA CFG form.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Scalar parameter types, in order.
    pub param_tys: Vec<IntType>,
    /// Return type; `None` for void.
    pub ret_ty: Option<IntType>,
    /// All instructions; [`Value`] indexes this.
    pub insts: Vec<InstData>,
    /// All blocks; [`BlockId`] indexes this.
    pub blocks: Vec<BlockData>,
    /// All memories; [`MemId`] indexes this.
    pub mems: Vec<MemInfo>,
    /// Entry block.
    pub entry: BlockId,
    /// Source span of each instruction, parallel to `insts`. Passes that
    /// push `InstData` directly may leave it short; missing entries read
    /// as [`Span::dummy`] through [`Function::span_of`].
    pub spans: Vec<Span>,
}

impl Function {
    /// Creates an empty function with one (entry) block.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            param_tys: Vec::new(),
            ret_ty: None,
            insts: Vec::new(),
            blocks: vec![BlockData {
                insts: Vec::new(),
                term: Term::Unreachable,
            }],
            mems: Vec::new(),
            entry: BlockId(0),
            spans: Vec::new(),
        }
    }

    /// The instruction defining `v`.
    pub fn inst(&self, v: Value) -> &InstData {
        &self.insts[v.0 as usize]
    }

    /// Mutable access to the instruction defining `v`.
    pub fn inst_mut(&mut self, v: Value) -> &mut InstData {
        &mut self.insts[v.0 as usize]
    }

    /// The block data for `b`.
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.0 as usize]
    }

    /// Mutable access to block `b`.
    pub fn block_mut(&mut self, b: BlockId) -> &mut BlockData {
        &mut self.blocks[b.0 as usize]
    }

    /// The memory info for `m`.
    pub fn mem(&self, m: MemId) -> &MemInfo {
        &self.mems[m.0 as usize]
    }

    /// Adds a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData {
            insts: Vec::new(),
            term: Term::Unreachable,
        });
        id
    }

    /// Appends an instruction to `block` and returns its value.
    pub fn add_inst(&mut self, block: BlockId, kind: InstKind, ty: IntType) -> Value {
        let v = Value(self.insts.len() as u32);
        self.insts.push(InstData { kind, ty, block });
        self.spans.push(Span::dummy());
        self.blocks[block.0 as usize].insts.push(v);
        v
    }

    /// Inserts a phi at the front of `block`.
    pub fn add_phi(&mut self, block: BlockId, ty: IntType) -> Value {
        let v = Value(self.insts.len() as u32);
        self.insts.push(InstData {
            kind: InstKind::Phi(Vec::new()),
            ty,
            block,
        });
        self.spans.push(Span::dummy());
        self.blocks[block.0 as usize].insts.insert(0, v);
        v
    }

    /// The source span of `v`, or [`Span::dummy`] when none was recorded
    /// (synthesized instructions, passes that bypass [`Function::add_inst`]).
    pub fn span_of(&self, v: Value) -> Span {
        self.spans.get(v.0 as usize).copied().unwrap_or_else(Span::dummy)
    }

    /// Records the source span of `v`, growing the table as needed.
    pub fn set_span(&mut self, v: Value, span: Span) {
        let i = v.0 as usize;
        if self.spans.len() <= i {
            self.spans.resize(i + 1, Span::dummy());
        }
        self.spans[i] = span;
    }

    /// Adds a memory and returns its id.
    pub fn add_mem(&mut self, info: MemInfo) -> MemId {
        let id = MemId(self.mems.len() as u32);
        self.mems.push(info);
        id
    }

    /// Predecessor blocks of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Blocks in reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS to avoid recursion limits on long CFG chains.
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.0 as usize] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.block(b).term.successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Renumbers values densely, dropping instructions that are not placed
    /// in any block (e.g. phis removed by cleanup passes).
    ///
    /// # Panics
    ///
    /// Panics if a placed instruction references an unplaced one.
    pub fn compact(&mut self) {
        let mut map: Vec<Option<Value>> = vec![None; self.insts.len()];
        let mut new_insts: Vec<InstData> = Vec::new();
        let mut new_spans: Vec<Span> = Vec::new();
        for (bi, block) in self.blocks.iter().enumerate() {
            for &v in &block.insts {
                let nv = Value(new_insts.len() as u32);
                map[v.0 as usize] = Some(nv);
                let mut data = self.insts[v.0 as usize].clone();
                data.block = BlockId(bi as u32);
                new_insts.push(data);
                new_spans.push(self.span_of(v));
            }
        }
        let remap = |v: Value| -> Value {
            map[v.0 as usize].unwrap_or_else(|| panic!("compact: {v} used but unplaced"))
        };
        for inst in &mut new_insts {
            inst.kind.map_operands(remap);
        }
        for block in &mut self.blocks {
            for v in &mut block.insts {
                *v = remap(*v);
            }
            match &mut block.term {
                Term::Br { cond, .. } => *cond = remap(*cond),
                Term::Ret(Some(v)) => *v = remap(*v),
                _ => {}
            }
        }
        self.insts = new_insts;
        self.spans = new_spans;
    }

    /// Number of instructions that are not phis or params (a rough size
    /// metric used in reports).
    pub fn op_count(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| !matches!(i.kind, InstKind::Phi(_) | InstKind::Param(_)))
            .count()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, ty) in self.param_tys.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ty}")?;
        }
        write!(f, ")")?;
        if let Some(rt) = self.ret_ty {
            write!(f, " -> {rt}")?;
        }
        writeln!(f, " {{")?;
        for (mi, m) in self.mems.iter().enumerate() {
            writeln!(
                f,
                "  mem m{mi}: {} x {} ({}{})",
                m.len,
                m.elem,
                m.name,
                if m.rom.is_some() { ", rom" } else { "" }
            )?;
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            writeln!(f, "{}:", BlockId(bi as u32))?;
            for &v in &block.insts {
                let inst = self.inst(v);
                write!(f, "  {v}: {} = ", inst.ty)?;
                match &inst.kind {
                    InstKind::Param(i) => writeln!(f, "param {i}")?,
                    InstKind::Const(c) => writeln!(f, "const {c}")?,
                    InstKind::Bin(op, a, b) => writeln!(f, "{} {a}, {b}", op.mnemonic())?,
                    InstKind::Un(UnKind::Neg, a) => writeln!(f, "neg {a}")?,
                    InstKind::Un(UnKind::Not, a) => writeln!(f, "not {a}")?,
                    InstKind::Select { cond, t, f: fv } => writeln!(f, "select {cond}, {t}, {fv}")?,
                    InstKind::Cast { from, val } => writeln!(f, "cast {val} ({from})")?,
                    InstKind::Load { mem, addr } => writeln!(f, "load {mem}[{addr}]")?,
                    InstKind::Store { mem, addr, value } => {
                        writeln!(f, "store {mem}[{addr}], {value}")?
                    }
                    InstKind::Phi(args) => {
                        write!(f, "phi")?;
                        for (b, v) in args {
                            write!(f, " [{b}: {v}]")?;
                        }
                        writeln!(f)?;
                    }
                }
            }
            match &block.term {
                Term::Jump(b) => writeln!(f, "  jump {b}")?,
                Term::Br { cond, then, els } => writeln!(f, "  br {cond}, {then}, {els}")?,
                Term::Ret(Some(v)) => writeln!(f, "  ret {v}")?,
                Term::Ret(None) => writeln!(f, "  ret")?,
                Term::Unreachable => writeln!(f, "  unreachable")?,
            }
        }
        writeln!(f, "}}")
    }
}

/// Evaluates a binary operation on canonical values of type `ty`.
///
/// This single definition is shared by the IR executor, the constant
/// folder, the netlist simulator, and the dataflow simulator so they cannot
/// drift apart.
#[inline]
pub fn eval_bin(op: BinKind, ty: IntType, a: i64, b: i64) -> i64 {
    let (ua, ub) = ((a as u64) & ty.mask(), (b as u64) & ty.mask());
    let raw = match op {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => {
            if ub == 0 && !ty.signed {
                0
            } else if ty.signed {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            } else {
                (ua / ub) as i64
            }
        }
        BinKind::Rem => {
            if ty.signed {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            } else if ub == 0 {
                0
            } else {
                (ua % ub) as i64
            }
        }
        BinKind::Shl => {
            let sh = (ub as u32).min(63);
            if sh >= ty.width as u32 {
                0
            } else {
                a.wrapping_shl(sh)
            }
        }
        BinKind::Shr => {
            let sh = (ub as u32).min(63);
            if sh >= ty.width as u32 {
                if ty.signed && a < 0 {
                    -1
                } else {
                    0
                }
            } else if ty.signed {
                a.wrapping_shr(sh)
            } else {
                (ua >> sh) as i64
            }
        }
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
        BinKind::Eq => return (ua == ub) as i64,
        BinKind::Ne => return (ua != ub) as i64,
        BinKind::Lt => return if ty.signed { a < b } else { ua < ub } as i64,
        BinKind::Le => return if ty.signed { a <= b } else { ua <= ub } as i64,
        BinKind::Gt => return if ty.signed { a > b } else { ua > ub } as i64,
        BinKind::Ge => return if ty.signed { a >= b } else { ua >= ub } as i64,
    };
    ty.canonicalize(raw)
}

/// Evaluates a unary operation on a canonical value of type `ty`.
#[inline]
pub fn eval_un(op: UnKind, ty: IntType, a: i64) -> i64 {
    match op {
        UnKind::Neg => ty.canonicalize(a.wrapping_neg()),
        UnKind::Not => ty.canonicalize(!a),
    }
}

/// Converts a canonical value of type `from` to canonical form in `to`.
#[inline]
pub fn eval_cast(from: IntType, to: IntType, v: i64) -> i64 {
    // `v` is already in canonical form for `from` (sign- or zero-extended
    // to 64 bits), so conversion is just re-canonicalization in `to`.
    let _ = from;
    to.canonicalize(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(w: u16) -> IntType {
        IntType::new(w, false)
    }

    fn s(w: u16) -> IntType {
        IntType::new(w, true)
    }

    #[test]
    fn eval_bin_wrapping_add() {
        assert_eq!(eval_bin(BinKind::Add, u(8), 200, 100), 44);
        assert_eq!(eval_bin(BinKind::Add, s(8), 100, 100), -56);
    }

    #[test]
    fn eval_bin_division_semantics() {
        assert_eq!(eval_bin(BinKind::Div, s(32), 7, 2), 3);
        assert_eq!(eval_bin(BinKind::Div, s(32), -7, 2), -3);
        assert_eq!(eval_bin(BinKind::Div, s(32), 7, 0), 0);
        assert_eq!(
            eval_bin(BinKind::Div, u(32), u32::MAX as i64, 2),
            0x7fff_ffff
        );
        assert_eq!(eval_bin(BinKind::Rem, s(32), -7, 2), -1);
        assert_eq!(eval_bin(BinKind::Rem, u(8), 255, 0), 0);
    }

    #[test]
    fn eval_bin_shifts() {
        assert_eq!(eval_bin(BinKind::Shl, u(8), 0b101, 2), 0b10100);
        assert_eq!(eval_bin(BinKind::Shl, u(8), 0xff, 8), 0);
        assert_eq!(eval_bin(BinKind::Shr, s(8), -128, 1), -64);
        assert_eq!(eval_bin(BinKind::Shr, u(8), 0x80, 1), 0x40);
        // Over-shift: arithmetic keeps sign, logical zeroes.
        assert_eq!(eval_bin(BinKind::Shr, s(8), -1, 100), -1);
        assert_eq!(eval_bin(BinKind::Shr, u(8), 0xff, 100), 0);
    }

    #[test]
    fn eval_bin_comparisons_respect_signedness() {
        // 0xff as u8 is 255; as i8 it is -1.
        assert_eq!(eval_bin(BinKind::Lt, u(8), 255, 1), 0);
        assert_eq!(eval_bin(BinKind::Lt, s(8), -1, 1), 1);
        assert_eq!(eval_bin(BinKind::Eq, u(8), 255, 255), 1);
    }

    #[test]
    fn eval_un_and_cast() {
        assert_eq!(eval_un(UnKind::Neg, s(8), -128), -128); // wraps
        assert_eq!(eval_un(UnKind::Not, u(4), 0b0101), 0b1010);
        assert_eq!(eval_cast(s(8), u(8), -1), 255);
        assert_eq!(eval_cast(u(8), s(4), 0b1111), -1);
        assert_eq!(eval_cast(u(4), u(8), 15), 15);
    }

    #[test]
    fn function_builder_basics() {
        let mut f = Function::new("t");
        let b0 = f.entry;
        let c1 = f.add_inst(b0, InstKind::Const(1), s(32));
        let c2 = f.add_inst(b0, InstKind::Const(2), s(32));
        let sum = f.add_inst(b0, InstKind::Bin(BinKind::Add, c1, c2), s(32));
        f.block_mut(b0).term = Term::Ret(Some(sum));
        f.ret_ty = Some(s(32));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.insts.len(), 3);
        assert_eq!(f.block(b0).term.successors(), vec![]);
        let text = f.to_string();
        assert!(text.contains("add v0, v1"), "{text}");
    }

    #[test]
    fn predecessors_and_rpo() {
        let mut f = Function::new("t");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let c = f.add_inst(b0, InstKind::Const(1), u(1));
        f.block_mut(b0).term = Term::Br {
            cond: c,
            then: b1,
            els: b2,
        };
        f.block_mut(b1).term = Term::Jump(b3);
        f.block_mut(b2).term = Term::Jump(b3);
        f.block_mut(b3).term = Term::Ret(None);
        let preds = f.predecessors();
        assert_eq!(preds[b3.0 as usize], vec![b1, b2]);
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], b0);
        assert_eq!(*rpo.last().unwrap(), b3);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn phi_inserts_at_front() {
        let mut f = Function::new("t");
        let b0 = f.entry;
        f.add_inst(b0, InstKind::Const(5), s(32));
        let phi = f.add_phi(b0, s(32));
        assert_eq!(f.block(b0).insts[0], phi);
    }

    #[test]
    fn map_operands_rewrites() {
        let mut k = InstKind::Bin(BinKind::Add, Value(1), Value(2));
        k.map_operands(|v| Value(v.0 + 10));
        assert_eq!(k, InstKind::Bin(BinKind::Add, Value(11), Value(12)));
    }
}
