//! A reference executor for the IR.
//!
//! Used for three things:
//!
//! 1. validating HIR→IR lowering against the AST interpreter;
//! 2. providing the *dynamic instruction trace* consumed by the ILP-limit
//!    experiment (the paper's Wall citation): each executed instruction
//!    records which earlier trace entries it depends on, with perfect
//!    memory disambiguation by address;
//! 3. giving backends a golden result to compare their simulations against.

use crate::ir::*;
use std::collections::HashMap;
use std::fmt;

/// An argument bound to an entry-function parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A scalar parameter value.
    Scalar(i64),
    /// Initial contents of an array parameter (padded/truncated to fit).
    Array(Vec<i64>),
}

/// Errors during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An array index was out of bounds.
    OutOfBounds {
        /// Memory name.
        mem: String,
        /// Offending index.
        index: i64,
        /// Memory length.
        len: usize,
    },
    /// The step limit was exceeded (probable infinite loop).
    StepLimit(u64),
    /// A parameter had no bound argument or the wrong kind.
    BadArgument(usize),
    /// The IR was malformed (e.g. fell off an `Unreachable` terminator).
    Malformed(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { mem, index, len } => {
                write!(f, "index {index} out of bounds for memory `{mem}` (len {len})")
            }
            ExecError::StepLimit(n) => write!(f, "exceeded step limit of {n} instructions"),
            ExecError::BadArgument(i) => write!(f, "missing or mistyped argument {i}"),
            ExecError::Malformed(m) => write!(f, "malformed IR: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One entry of the dynamic trace: an executed instruction plus the trace
/// indices it depends on (data deps through values, memory deps by address).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The instruction that executed.
    pub inst: Value,
    /// Indices of earlier [`TraceEntry`]s this one must follow.
    pub deps: Vec<u32>,
}

/// Result of executing a function.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Return value, if the function returns one.
    pub ret: Option<i64>,
    /// Final contents of every memory (by [`MemId`] index).
    pub mems: Vec<Vec<i64>>,
    /// Number of instructions executed.
    pub steps: u64,
    /// Dynamic dependence trace, when requested.
    pub trace: Vec<TraceEntry>,
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Abort after this many executed instructions.
    pub step_limit: u64,
    /// Record the dynamic dependence trace (costs memory).
    pub record_trace: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            step_limit: 50_000_000,
            record_trace: false,
        }
    }
}

/// Executes `f` on `args` (indexed by source parameter position).
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds memory access, argument mismatch,
/// step-limit overrun, or malformed IR.
pub fn execute(f: &Function, args: &[ArgValue], opts: &ExecOptions) -> Result<ExecResult, ExecError> {
    // Bind memories.
    let mut mems: Vec<Vec<i64>> = Vec::with_capacity(f.mems.len());
    for m in &f.mems {
        let contents = match (&m.source, &m.rom) {
            (_, Some(rom)) => {
                let mut v = rom.clone();
                v.resize(m.len, 0);
                v
            }
            (MemSource::Param(i), None) => match args.get(*i) {
                Some(ArgValue::Array(a)) => {
                    let mut v = a.clone();
                    v.resize(m.len, 0);
                    v.iter_mut().for_each(|x| *x = m.elem.canonicalize(*x));
                    v
                }
                _ => return Err(ExecError::BadArgument(*i)),
            },
            (_, None) => vec![0; m.len],
        };
        mems.push(contents);
    }

    let mut values: Vec<i64> = vec![0; f.insts.len()];
    let mut steps: u64 = 0;
    let mut trace: Vec<TraceEntry> = Vec::new();
    // Trace bookkeeping: producing trace index per value, last store/load
    // per (mem, address).
    let mut def_entry: Vec<Option<u32>> = vec![None; f.insts.len()];
    let mut last_store: Vec<HashMap<i64, u32>> = vec![HashMap::new(); f.mems.len()];
    let mut last_load: Vec<HashMap<i64, Vec<u32>>> = vec![HashMap::new(); f.mems.len()];

    let mut block = f.entry;
    let mut prev: Option<BlockId> = None;

    loop {
        // Phase 1: evaluate phis simultaneously.
        let mut phi_updates: Vec<(Value, i64, Option<u32>)> = Vec::new();
        for &v in &f.block(block).insts {
            let inst = f.inst(v);
            if let InstKind::Phi(incoming) = &inst.kind {
                let p = prev.ok_or(ExecError::Malformed("phi in entry block"))?;
                let (_, src) = incoming
                    .iter()
                    .find(|(b, _)| *b == p)
                    .ok_or(ExecError::Malformed("phi missing predecessor entry"))?;
                phi_updates.push((v, values[src.0 as usize], def_entry[src.0 as usize]));
            } else {
                break;
            }
        }
        for (v, val, dep) in phi_updates {
            values[v.0 as usize] = val;
            def_entry[v.0 as usize] = dep;
        }

        // Phase 2: execute the body.
        for &v in &f.block(block).insts {
            let inst = f.inst(v);
            if matches!(inst.kind, InstKind::Phi(_)) {
                continue;
            }
            steps += 1;
            if steps > opts.step_limit {
                return Err(ExecError::StepLimit(opts.step_limit));
            }
            let mut deps: Vec<u32> = Vec::new();
            let dep_of = |val: Value, deps: &mut Vec<u32>| {
                if let Some(e) = def_entry[val.0 as usize] {
                    deps.push(e);
                }
            };
            let result: Option<i64> = match &inst.kind {
                InstKind::Param(i) => match args.get(*i) {
                    Some(ArgValue::Scalar(s)) => Some(inst.ty.canonicalize(*s)),
                    _ => return Err(ExecError::BadArgument(*i)),
                },
                InstKind::Const(c) => Some(inst.ty.canonicalize(*c)),
                InstKind::Bin(op, a, b) => {
                    if opts.record_trace {
                        dep_of(*a, &mut deps);
                        dep_of(*b, &mut deps);
                    }
                    // Comparisons use the operand type for signedness.
                    let ety = if op.is_comparison() {
                        f.inst(*a).ty
                    } else {
                        inst.ty
                    };
                    Some(eval_bin(*op, ety, values[a.0 as usize], values[b.0 as usize]))
                }
                InstKind::Un(op, a) => {
                    if opts.record_trace {
                        dep_of(*a, &mut deps);
                    }
                    Some(eval_un(*op, inst.ty, values[a.0 as usize]))
                }
                InstKind::Select { cond, t, f: fv } => {
                    if opts.record_trace {
                        dep_of(*cond, &mut deps);
                        dep_of(*t, &mut deps);
                        dep_of(*fv, &mut deps);
                    }
                    Some(if values[cond.0 as usize] != 0 {
                        values[t.0 as usize]
                    } else {
                        values[fv.0 as usize]
                    })
                }
                InstKind::Cast { from, val } => {
                    if opts.record_trace {
                        dep_of(*val, &mut deps);
                    }
                    Some(eval_cast(*from, inst.ty, values[val.0 as usize]))
                }
                InstKind::Load { mem, addr } => {
                    let idx = values[addr.0 as usize];
                    let m = &f.mems[mem.0 as usize];
                    let storage = &mems[mem.0 as usize];
                    if idx < 0 || idx as usize >= storage.len() {
                        return Err(ExecError::OutOfBounds {
                            mem: m.name.clone(),
                            index: idx,
                            len: storage.len(),
                        });
                    }
                    if opts.record_trace {
                        dep_of(*addr, &mut deps);
                        if let Some(&s) = last_store[mem.0 as usize].get(&idx) {
                            deps.push(s);
                        }
                        let entry_idx = trace.len() as u32;
                        last_load[mem.0 as usize]
                            .entry(idx)
                            .or_default()
                            .push(entry_idx);
                    }
                    Some(storage[idx as usize])
                }
                InstKind::Store { mem, addr, value } => {
                    let idx = values[addr.0 as usize];
                    let m = &f.mems[mem.0 as usize];
                    if idx < 0 || idx as usize >= mems[mem.0 as usize].len() {
                        return Err(ExecError::OutOfBounds {
                            mem: m.name.clone(),
                            index: idx,
                            len: mems[mem.0 as usize].len(),
                        });
                    }
                    if opts.record_trace {
                        dep_of(*addr, &mut deps);
                        dep_of(*value, &mut deps);
                        if let Some(&s) = last_store[mem.0 as usize].get(&idx) {
                            deps.push(s);
                        }
                        if let Some(loads) = last_load[mem.0 as usize].remove(&idx) {
                            deps.extend(loads);
                        }
                        let entry_idx = trace.len() as u32;
                        last_store[mem.0 as usize].insert(idx, entry_idx);
                    }
                    let canon = m.elem.canonicalize(values[value.0 as usize]);
                    mems[mem.0 as usize][idx as usize] = canon;
                    None
                }
                InstKind::Phi(_) => unreachable!("handled in phase 1"),
            };
            if opts.record_trace {
                // Constants and params are free and traced as having no
                // entry; everything else gets one.
                let free = matches!(inst.kind, InstKind::Const(_) | InstKind::Param(_));
                if !free {
                    deps.sort_unstable();
                    deps.dedup();
                    def_entry[v.0 as usize] = Some(trace.len() as u32);
                    trace.push(TraceEntry { inst: v, deps });
                } else {
                    def_entry[v.0 as usize] = None;
                }
            }
            if let Some(r) = result {
                values[v.0 as usize] = r;
            }
        }

        // Phase 3: follow the terminator.
        match &f.block(block).term {
            Term::Jump(b) => {
                prev = Some(block);
                block = *b;
            }
            Term::Br { cond, then, els } => {
                prev = Some(block);
                block = if values[cond.0 as usize] != 0 {
                    *then
                } else {
                    *els
                };
            }
            Term::Ret(v) => {
                return Ok(ExecResult {
                    ret: v.map(|v| values[v.0 as usize]),
                    mems,
                    steps,
                    trace,
                });
            }
            Term::Unreachable => return Err(ExecError::Malformed("reached Unreachable")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_function;
    use chls_frontend::compile_to_hir;

    fn run(src: &str, name: &str, args: &[ArgValue]) -> ExecResult {
        let hir = compile_to_hir(src).expect("frontend ok");
        let (id, _) = hir.func_by_name(name).expect("function exists");
        let f = lower_function(&hir, id).expect("lowering ok");
        execute(&f, args, &ExecOptions::default()).expect("execution ok")
    }

    #[test]
    fn arithmetic_expression() {
        let r = run(
            "int f(int a, int b) { return (a + b) * (a - b); }",
            "f",
            &[ArgValue::Scalar(7), ArgValue::Scalar(3)],
        );
        assert_eq!(r.ret, Some(40));
    }

    #[test]
    fn loop_sum() {
        let r = run(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            "f",
            &[ArgValue::Scalar(10)],
        );
        assert_eq!(r.ret, Some(45));
    }

    #[test]
    fn gcd_euclid() {
        let src = "int gcd(int a, int b) {
            while (b != 0) { int t = b; b = a % b; a = t; }
            return a;
        }";
        let r = run(src, "gcd", &[ArgValue::Scalar(48), ArgValue::Scalar(36)]);
        assert_eq!(r.ret, Some(12));
    }

    #[test]
    fn array_write_read() {
        let r = run(
            "int f(int a[4]) {
                for (int i = 0; i < 4; i++) a[i] = i * i;
                return a[3];
            }",
            "f",
            &[ArgValue::Array(vec![0; 4])],
        );
        assert_eq!(r.ret, Some(9));
        assert_eq!(r.mems[0], vec![0, 1, 4, 9]);
    }

    #[test]
    fn rom_lookup() {
        let r = run(
            "const int t[4] = {5, 6, 7, 8}; int f(int i) { return t[i]; }",
            "f",
            &[ArgValue::Scalar(2)],
        );
        assert_eq!(r.ret, Some(7));
    }

    #[test]
    fn narrow_types_wrap() {
        let r = run(
            "uint<8> f(uint<8> a) { return a + 200; }",
            "f",
            &[ArgValue::Scalar(100)],
        );
        assert_eq!(r.ret, Some(44));
    }

    #[test]
    fn signed_unsigned_comparison() {
        // In unsigned 8-bit, 255 > 1; in signed 8-bit, -1 < 1.
        let r = run(
            "bool f(uint<8> a) { return a > 1; }",
            "f",
            &[ArgValue::Scalar(255)],
        );
        assert_eq!(r.ret, Some(1));
        let r = run(
            "bool f(sint<8> a) { return a > 1; }",
            "f",
            &[ArgValue::Scalar(-1)],
        );
        assert_eq!(r.ret, Some(0));
    }

    #[test]
    fn out_of_bounds_detected() {
        let hir = compile_to_hir("int f(int a[4], int i) { return a[i]; }").unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = lower_function(&hir, id).unwrap();
        let err = execute(
            &f,
            &[ArgValue::Array(vec![0; 4]), ArgValue::Scalar(9)],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let hir = compile_to_hir("void f() { while (true) { } }").unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = lower_function(&hir, id).unwrap();
        let err = execute(
            &f,
            &[],
            &ExecOptions {
                step_limit: 1000,
                record_trace: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::StepLimit(_)));
    }

    #[test]
    fn trace_records_dependences() {
        let hir = compile_to_hir("int f(int a, int b) { return (a + b) * (a - b); }").unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = lower_function(&hir, id).unwrap();
        let r = execute(
            &f,
            &[ArgValue::Scalar(2), ArgValue::Scalar(1)],
            &ExecOptions {
                record_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        // add, sub, mul: three entries; mul depends on both.
        assert_eq!(r.trace.len(), 3);
        assert_eq!(r.trace[2].deps, vec![0, 1]);
        // add and sub are independent (ILP of 2 available).
        assert!(r.trace[0].deps.is_empty());
        assert!(r.trace[1].deps.is_empty());
    }

    #[test]
    fn trace_memory_dependences_by_address() {
        let src = "int f(int a[4]) {
            a[0] = 1;
            a[1] = 2;
            return a[0];
        }";
        let hir = compile_to_hir(src).unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = lower_function(&hir, id).unwrap();
        let r = execute(
            &f,
            &[ArgValue::Array(vec![0; 4])],
            &ExecOptions {
                record_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        // Entries: store a[0], store a[1], load a[0].
        assert_eq!(r.trace.len(), 3);
        // The load depends on the store to a[0] (entry 0) but NOT on the
        // store to a[1] (perfect disambiguation).
        assert_eq!(r.trace[2].deps, vec![0]);
    }

    #[test]
    fn mems_returned_for_inout_arrays() {
        let r = run(
            "void f(int a[3]) { a[0] = 10; a[2] = 30; }",
            "f",
            &[ArgValue::Array(vec![1, 2, 3])],
        );
        assert_eq!(r.ret, None);
        assert_eq!(r.mems[0], vec![10, 2, 30]);
    }
}
