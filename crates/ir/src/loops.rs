//! Natural-loop detection from back edges.
//!
//! A back edge `t -> h` exists when `h` dominates `t`; the natural loop of
//! that edge is `h` plus every block that can reach `t` without passing
//! through `h`. Loops sharing a header are merged. Nesting depth is derived
//! by containment.

use crate::dom::DomTree;
use crate::ir::{BlockId, Function};
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (the block the back edges target).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: usize,
}

impl NaturalLoop {
    /// True when `b` is inside this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoopForest {
    /// Loops sorted by (depth, header).
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Finds the natural loops of `f`.
    pub fn compute(f: &Function) -> Self {
        let dt = DomTree::compute(f);
        Self::compute_with(f, &dt)
    }

    /// Finds the natural loops of `f`, reusing a dominator tree.
    pub fn compute_with(f: &Function, dt: &DomTree) -> Self {
        let preds = f.predecessors();
        let mut by_header: Vec<(BlockId, BTreeSet<BlockId>, Vec<BlockId>)> = Vec::new();

        for &b in &dt.rpo {
            for succ in f.block(b).term.successors() {
                if dt.dominates(succ, b) {
                    // Back edge b -> succ.
                    let header = succ;
                    let mut body: BTreeSet<BlockId> = BTreeSet::new();
                    body.insert(header);
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in &preds[x.0 as usize] {
                                stack.push(p);
                            }
                        }
                    }
                    match by_header.iter_mut().find(|(h, ..)| *h == header) {
                        Some((_, blocks, latches)) => {
                            blocks.extend(body);
                            latches.push(b);
                        }
                        None => by_header.push((header, body, vec![b])),
                    }
                }
            }
        }

        let mut loops: Vec<NaturalLoop> = by_header
            .into_iter()
            .map(|(header, blocks, latches)| NaturalLoop {
                header,
                blocks,
                latches,
                depth: 1,
            })
            .collect();

        // Depth = number of loops whose block set strictly contains this one.
        let sets: Vec<BTreeSet<BlockId>> = loops.iter().map(|l| l.blocks.clone()).collect();
        for (i, l) in loops.iter_mut().enumerate() {
            let mut depth = 1;
            for (j, other) in sets.iter().enumerate() {
                if i != j && other.is_superset(&sets[i]) && other.len() > sets[i].len() {
                    depth += 1;
                }
            }
            l.depth = depth;
        }
        loops.sort_by_key(|l| (l.depth, l.header));
        LoopForest { loops }
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{InstKind, Term};
    use chls_frontend::IntType;

    fn u1() -> IntType {
        IntType::new(1, false)
    }

    /// b0 -> b1(h) -> b2 -> b1 ; b1 -> b3
    fn single_loop() -> Function {
        let mut f = Function::new("l");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let c = f.add_inst(b1, InstKind::Const(1), u1());
        f.block_mut(b0).term = Term::Jump(b1);
        f.block_mut(b1).term = Term::Br {
            cond: c,
            then: b2,
            els: b3,
        };
        f.block_mut(b2).term = Term::Jump(b1);
        f.block_mut(b3).term = Term::Ret(None);
        f
    }

    #[test]
    fn finds_single_loop() {
        let f = single_loop();
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)) && !l.contains(BlockId(3)));
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn nested_loops_get_depths() {
        // b0 -> b1(outer h) -> b2(inner h) -> b3 -> b2 ; b2 -> b4 -> b1 ; b1 -> b5
        let mut f = Function::new("n");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let b4 = f.add_block();
        let b5 = f.add_block();
        let c1 = f.add_inst(b1, InstKind::Const(1), u1());
        let c2 = f.add_inst(b2, InstKind::Const(1), u1());
        f.block_mut(b0).term = Term::Jump(b1);
        f.block_mut(b1).term = Term::Br {
            cond: c1,
            then: b2,
            els: b5,
        };
        f.block_mut(b2).term = Term::Br {
            cond: c2,
            then: b3,
            els: b4,
        };
        f.block_mut(b3).term = Term::Jump(b2);
        f.block_mut(b4).term = Term::Jump(b1);
        f.block_mut(b5).term = Term::Ret(None);
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loops.iter().find(|l| l.header == b1).unwrap();
        let inner = forest.loops.iter().find(|l| l.header == b2).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.blocks.is_superset(&inner.blocks));
        assert_eq!(forest.innermost_containing(b3).unwrap().header, b2);
        assert_eq!(forest.innermost_containing(b4).unwrap().header, b1);
    }

    #[test]
    fn no_loops_in_straight_line() {
        let mut f = Function::new("s");
        let b0 = f.entry;
        let b1 = f.add_block();
        f.block_mut(b0).term = Term::Jump(b1);
        f.block_mut(b1).term = Term::Ret(None);
        assert!(LoopForest::compute(&f).loops.is_empty());
    }

    #[test]
    fn self_loop() {
        let mut f = Function::new("s");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let c = f.add_inst(b1, InstKind::Const(0), u1());
        f.block_mut(b0).term = Term::Jump(b1);
        f.block_mut(b1).term = Term::Br {
            cond: c,
            then: b1,
            els: b2,
        };
        f.block_mut(b2).term = Term::Ret(None);
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].blocks.len(), 1);
        assert_eq!(forest.loops[0].latches, vec![b1]);
    }
}
