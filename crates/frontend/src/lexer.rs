//! Hand-written lexer for CHL.
//!
//! Supports `//` and `/* */` comments, decimal/hex/octal/binary integer
//! literals, character literals with the common escapes, and `#pragma` lines
//! (captured as single tokens; all other preprocessor lines are rejected —
//! CHL has no preprocessor).

use crate::diag::Diagnostic;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src` into a token vector terminated by an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on the first lexical error (bad character,
/// unterminated comment or literal, malformed number).
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'0'..=b'9' => self.lex_number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'\'' => self.lex_char(start)?,
                b'#' => self.lex_pragma(start)?,
                _ => self.lex_operator(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(Diagnostic::error(
                                    "unterminated block comment",
                                    Span::new(start as u32, self.pos as u32),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<(), Diagnostic> {
        let (radix, digits_start) = if self.peek() == Some(b'0') {
            match self.peek2() {
                Some(b'x' | b'X') => {
                    self.pos += 2;
                    (16, self.pos)
                }
                Some(b'b' | b'B') => {
                    self.pos += 2;
                    (2, self.pos)
                }
                Some(b'0'..=b'7') => {
                    self.pos += 1;
                    (8, self.pos)
                }
                _ => (10, self.pos),
            }
        } else {
            (10, self.pos)
        };
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.src[digits_start..self.pos]
            .chars()
            .filter(|&c| c != '_')
            .collect();
        // Strip C integer suffixes (u, l, ul, ll, ull in any case).
        let trimmed = text.trim_end_matches(['u', 'U', 'l', 'L']);
        let span = Span::new(start as u32, self.pos as u32);
        if trimmed.is_empty() && radix != 10 {
            return Err(Diagnostic::error("missing digits in integer literal", span));
        }
        let digits = if trimmed.is_empty() { "0" } else { trimmed };
        let value = u64::from_str_radix(digits, radix)
            .map_err(|_| Diagnostic::error("invalid integer literal", span))?;
        self.push(TokenKind::IntLit(value), start);
        Ok(())
    }

    fn lex_ident(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.push(kind, start);
    }

    fn lex_char(&mut self, start: usize) -> Result<(), Diagnostic> {
        self.pos += 1; // opening quote
        let value = match self.bump() {
            Some(b'\\') => {
                let esc = self.bump().ok_or_else(|| {
                    Diagnostic::error(
                        "unterminated character literal",
                        Span::new(start as u32, self.pos as u32),
                    )
                })?;
                match esc {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    b'0' => 0,
                    b'\\' => b'\\',
                    b'\'' => b'\'',
                    _ => {
                        return Err(Diagnostic::error(
                            "unknown escape in character literal",
                            Span::new(start as u32, self.pos as u32),
                        ));
                    }
                }
            }
            Some(c) if c != b'\'' && c != b'\n' => c,
            _ => {
                return Err(Diagnostic::error(
                    "empty or malformed character literal",
                    Span::new(start as u32, self.pos as u32),
                ));
            }
        };
        if self.bump() != Some(b'\'') {
            return Err(Diagnostic::error(
                "unterminated character literal",
                Span::new(start as u32, self.pos as u32),
            ));
        }
        self.push(TokenKind::CharLit(value), start);
        Ok(())
    }

    fn lex_pragma(&mut self, start: usize) -> Result<(), Diagnostic> {
        let line_end = self.src[self.pos..]
            .find('\n')
            .map(|i| self.pos + i)
            .unwrap_or(self.src.len());
        let line = &self.src[self.pos..line_end];
        let rest = line.strip_prefix('#').unwrap_or(line).trim_start();
        if let Some(body) = rest.strip_prefix("pragma") {
            self.pos = line_end;
            self.push(TokenKind::Pragma(body.trim().to_string()), start);
            Ok(())
        } else {
            Err(Diagnostic::error(
                "CHL has no preprocessor; only #pragma lines are accepted",
                Span::new(start as u32, (start + 1) as u32),
            ))
        }
    }

    fn lex_operator(&mut self, start: usize) -> Result<(), Diagnostic> {
        use TokenKind::*;
        let c = self.bump().expect("caller checked peek");
        let three = |l: &Lexer| {
            (
                l.bytes.get(l.pos).copied(),
                l.bytes.get(l.pos + 1).copied(),
            )
        };
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'?' => Question,
            b'~' => Tilde,
            b'@' => At,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    PlusPlus
                }
                Some(b'=') => {
                    self.pos += 1;
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.pos += 1;
                    MinusMinus
                }
                Some(b'=') => {
                    self.pos += 1;
                    MinusAssign
                }
                _ => Minus,
            },
            b'*' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    StarAssign
                }
                _ => Star,
            },
            b'/' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    SlashAssign
                }
                _ => Slash,
            },
            b'%' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    PercentAssign
                }
                _ => Percent,
            },
            b'&' => match self.peek() {
                Some(b'&') => {
                    self.pos += 1;
                    AmpAmp
                }
                Some(b'=') => {
                    self.pos += 1;
                    AmpAssign
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                Some(b'|') => {
                    self.pos += 1;
                    PipePipe
                }
                Some(b'=') => {
                    self.pos += 1;
                    PipeAssign
                }
                _ => Pipe,
            },
            b'^' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    CaretAssign
                }
                _ => Caret,
            },
            b'!' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Ne
                }
                _ => Bang,
            },
            b'=' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    EqEq
                }
                _ => Assign,
            },
            b'<' => match three(self) {
                (Some(b'<'), Some(b'=')) => {
                    self.pos += 2;
                    ShlAssign
                }
                (Some(b'<'), _) => {
                    self.pos += 1;
                    Shl
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    Le
                }
                _ => Lt,
            },
            b'>' => match three(self) {
                (Some(b'>'), Some(b'=')) => {
                    self.pos += 2;
                    ShrAssign
                }
                (Some(b'>'), _) => {
                    self.pos += 1;
                    Shr
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    Ge
                }
                _ => Gt,
            },
            other => {
                return Err(Diagnostic::error(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start as u32, self.pos as u32),
                ));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex failed")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![KwInt, Ident("x".into()), Assign, IntLit(42), Semi, Eof]
        );
    }

    #[test]
    fn lexes_all_radixes() {
        assert_eq!(
            kinds("255 0xff 0b11111111 0377"),
            vec![IntLit(255), IntLit(255), IntLit(255), IntLit(255), Eof]
        );
    }

    #[test]
    fn integer_suffixes_are_ignored() {
        assert_eq!(kinds("1u 2UL 3ll"), vec![IntLit(1), IntLit(2), IntLit(3), Eof]);
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("a <<= b >>= c <= >= == != && || ++ --"),
            vec![
                Ident("a".into()),
                ShlAssign,
                Ident("b".into()),
                ShrAssign,
                Ident("c".into()),
                Le,
                Ge,
                EqEq,
                Ne,
                AmpAmp,
                PipePipe,
                PlusPlus,
                MinusMinus,
                Eof
            ]
        );
    }

    #[test]
    fn shift_vs_nested_angle() {
        // `uint<8>` must lex `<` `8` `>` not `<8` as anything special.
        assert_eq!(kinds("uint<8>"), vec![KwUint, Lt, IntLit(8), Gt, Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n /* block\n spanning */ b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn char_literals_and_escapes() {
        assert_eq!(
            kinds(r"'a' '\n' '\0' '\\'"),
            vec![CharLit(b'a'), CharLit(b'\n'), CharLit(0), CharLit(b'\\'), Eof]
        );
    }

    #[test]
    fn pragma_is_one_token() {
        assert_eq!(
            kinds("#pragma unroll 4\nint x;"),
            vec![
                Pragma("unroll 4".into()),
                KwInt,
                Ident("x".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn non_pragma_hash_rejected() {
        assert!(lex("#include <stdio.h>").is_err());
    }

    #[test]
    fn bad_character_is_error() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn keywords_not_identifiers() {
        assert_eq!(kinds("while par chan"), vec![KwWhile, KwPar, KwChan, Eof]);
        // Prefixed identifiers stay identifiers.
        assert_eq!(kinds("whilex"), vec![Ident("whilex".into()), Eof]);
    }
}
