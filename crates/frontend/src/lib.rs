//! # chls-frontend
//!
//! Frontend for **CHL**, the C-like hardware language used throughout the
//! `chls` hardware-synthesis laboratory: lexer, parser, type checker, and
//! lowering to a typed, side-effect-normalized [`hir`].
//!
//! CHL is a C subset (integers, arrays, restricted pointers, functions,
//! full control flow) extended with the hardware constructs the paper's
//! surveyed languages add to C: bit-precise integers `uint<N>`/`sint<N>`,
//! Handel-C-style `par { ... }` parallel statements and `delay`, OCCAM-like
//! rendezvous channels `chan<T>` with `send`/`recv`, and pragmas for loop
//! unrolling, HardwareC-style timing constraints, memory banking, and the
//! target clock period.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), chls_frontend::FrontendError> {
//! let hir = chls_frontend::compile_to_hir(
//!     "int dot(int a[4], int b[4]) {
//!          int s = 0;
//!          for (int i = 0; i < 4; i++) s += a[i] * b[i];
//!          return s;
//!      }",
//! )?;
//! let (_, f) = hir.func_by_name("dot").expect("function exists");
//! assert_eq!(f.num_params, 2);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod chlprint;
pub mod diag;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod span;
pub mod token;
pub mod types;

pub use diag::{Diagnostic, FrontendError, Severity};
pub use sema::{
    analyze, analyze_relaxed, compile_to_hir, compile_to_hir_relaxed, recursion_cycles,
};
pub use span::Span;
pub use types::{IntType, Type};
