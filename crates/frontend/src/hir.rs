//! HIR: the typed, resolved, side-effect-normalized program representation.
//!
//! Semantic analysis ([`crate::sema`]) lowers the AST into HIR with these
//! guarantees, which every downstream consumer (interpreter, CFG lowering,
//! structured backends) relies on:
//!
//! * every name is resolved to a [`LocalId`], [`GlobalId`], or [`FuncId`];
//! * every expression carries its [`Type`], and binary operands have been
//!   converted to their common type with explicit [`HirExprKind::Cast`]s;
//! * expressions are **side-effect free**: assignments, `++`/`--`, function
//!   calls, and channel receives have been hoisted into statements with
//!   compiler temporaries;
//! * short-circuit `&&`/`||` are desugared to [`HirExprKind::Select`]
//!   (sound because expressions cannot trap: division by zero is defined to
//!   yield 0, as in most synthesis flows);
//! * loops with `#pragma unroll` keep their structured [`HirStmt::For`]
//!   form so the unroller can find them.

use crate::ast::{BinOp, UnOp};
use crate::span::Span;
use crate::types::Type;
use std::fmt;

/// Index of a local variable (or parameter) within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index of a global constant within the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index of a function within the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// How an array is mapped onto physical memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemBank {
    /// Backend default: one dedicated single-port memory per array.
    #[default]
    Auto,
    /// Split across `K` independently-addressable banks (element `i` lives
    /// in bank `i % K`).
    Banked(u32),
    /// Placed in the shared monolithic memory (all such arrays compete for
    /// its single port) — models C's undifferentiated memory.
    Monolithic,
}

/// A whole program after semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct HirProgram {
    /// All functions; [`FuncId`] indexes this.
    pub funcs: Vec<HirFunc>,
    /// All global constants; [`GlobalId`] indexes this.
    pub globals: Vec<HirGlobal>,
    /// Target clock period in picoseconds from `#pragma clock_period`.
    pub clock_period_ps: Option<u64>,
    /// Warning-severity diagnostics collected during lowering; compilation
    /// succeeded despite them. Callers decide whether and where to print.
    pub warnings: Vec<crate::diag::Diagnostic>,
}

impl HirProgram {
    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &HirFunc)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The function for an id.
    pub fn func(&self, id: FuncId) -> &HirFunc {
        &self.funcs[id.0 as usize]
    }

    /// The global for an id.
    pub fn global(&self, id: GlobalId) -> &HirGlobal {
        &self.globals[id.0 as usize]
    }
}

/// A global constant (scalar constants are folded at use sites, so in
/// practice these are ROM arrays).
#[derive(Debug, Clone, PartialEq)]
pub struct HirGlobal {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Flattened element values in canonical form.
    pub values: Vec<i64>,
    /// Memory banking request.
    pub bank: MemBank,
}

/// A function after semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct HirFunc {
    /// Source name.
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// The first `num_params` locals are the parameters, in order.
    pub num_params: usize,
    /// All locals including parameters and compiler temporaries.
    pub locals: Vec<HirLocal>,
    /// Function body.
    pub body: HirBlock,
    /// Functions this one calls (deduplicated).
    pub callees: Vec<FuncId>,
    /// True if the body contains `par`.
    pub uses_par: bool,
    /// True if the body contains channel operations.
    pub uses_channels: bool,
}

impl HirFunc {
    /// Parameter locals, in declaration order.
    pub fn params(&self) -> impl Iterator<Item = (LocalId, &HirLocal)> {
        self.locals
            .iter()
            .take(self.num_params)
            .enumerate()
            .map(|(i, l)| (LocalId(i as u32), l))
    }

    /// The local for an id.
    pub fn local(&self, id: LocalId) -> &HirLocal {
        &self.locals[id.0 as usize]
    }
}

/// A local variable, parameter, or compiler temporary.
#[derive(Debug, Clone, PartialEq)]
pub struct HirLocal {
    /// Source name; temporaries are named `$tN`.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// True for parameters.
    pub is_param: bool,
    /// Memory banking request, for array locals.
    pub bank: MemBank,
    /// Constant initializer (flattened), for `const` array locals (ROMs).
    pub rom: Option<Vec<i64>>,
    /// Declared `@ii(n)` initiation-interval contract, for channel locals.
    pub ii: Option<u32>,
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HirBlock {
    /// Statements in order.
    pub stmts: Vec<HirStmt>,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum HirPlace {
    /// A scalar or array local.
    Local(LocalId),
    /// A global ROM (reads only).
    Global(GlobalId),
    /// An element of an array place.
    Index {
        /// The array.
        base: Box<HirPlace>,
        /// Element index (integer-typed expression).
        index: Box<HirExpr>,
    },
    /// The target of a pointer value.
    Deref(Box<HirExpr>),
}

impl HirPlace {
    /// The root local, if this place bottoms out in one.
    pub fn root_local(&self) -> Option<LocalId> {
        match self {
            HirPlace::Local(id) => Some(*id),
            HirPlace::Index { base, .. } => base.root_local(),
            _ => None,
        }
    }
}

/// Statements. All expressions inside are side-effect free.
#[derive(Debug, Clone, PartialEq)]
pub enum HirStmt {
    /// `place = value;`
    Assign {
        /// Destination.
        place: HirPlace,
        /// Side-effect-free value, already cast to the place's type.
        value: HirExpr,
        /// Source location of the statement ([`Span::dummy`] when
        /// synthesized by an optimizer rather than lowered from source).
        span: Span,
    },
    /// `dst = func(args);` or bare `func(args);`
    Call {
        /// Where the return value goes, if used.
        dst: Option<HirPlace>,
        /// Callee.
        func: FuncId,
        /// Actual arguments.
        args: Vec<HirArg>,
        /// Source location of the call.
        span: Span,
    },
    /// `dst = recv(chan);`
    Recv {
        /// Where the received value goes.
        dst: HirPlace,
        /// The channel local.
        chan: LocalId,
        /// Source location of the receive.
        span: Span,
    },
    /// `send(chan, value);`
    Send {
        /// The channel local.
        chan: LocalId,
        /// Value to transmit.
        value: HirExpr,
        /// Source location of the send.
        span: Span,
    },
    /// Two-armed conditional (missing `else` becomes an empty block).
    If {
        /// Boolean condition.
        cond: HirExpr,
        /// Taken when true.
        then: HirBlock,
        /// Taken when false.
        els: HirBlock,
    },
    /// `while (cond) body` — `unroll` carries `#pragma unroll`.
    While {
        /// Boolean condition.
        cond: HirExpr,
        /// Loop body.
        body: HirBlock,
        /// Requested unroll factor (0 = fully).
        unroll: Option<u32>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body (runs at least once).
        body: HirBlock,
        /// Boolean condition tested after the body.
        cond: HirExpr,
    },
    /// Structured `for`, preserved so the unroller can recognize canonical
    /// induction patterns.
    For {
        /// Init statements (decls already hoisted; this is the init assignment).
        init: HirBlock,
        /// Boolean condition.
        cond: HirExpr,
        /// Step statements.
        step: HirBlock,
        /// Loop body.
        body: HirBlock,
        /// Requested unroll factor (0 = fully).
        unroll: Option<u32>,
    },
    /// `return;` / `return value;`
    Return(Option<HirExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block (scoping already resolved; kept for structure).
    Block(HirBlock),
    /// Parallel composition: run all branches to completion, then join.
    Par(Vec<HirBlock>),
    /// Consume one clock cycle.
    Delay,
    /// HardwareC-style relative timing constraint: `body` must be scheduled
    /// within `cycles` cycles.
    Constraint {
        /// Cycle budget.
        cycles: u32,
        /// Constrained statements.
        body: HirBlock,
    },
}

/// A function-call argument.
#[derive(Debug, Clone, PartialEq)]
pub enum HirArg {
    /// A scalar (or pointer) value.
    Value(HirExpr),
    /// A whole array passed by reference.
    Array(HirPlace),
}

/// A side-effect-free expression with its type.
#[derive(Debug, Clone, PartialEq)]
pub struct HirExpr {
    /// What the expression computes.
    pub kind: HirExprKind,
    /// Its type (never `Void`).
    pub ty: Type,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum HirExprKind {
    /// A constant in canonical form.
    Const(i64),
    /// Read a place.
    Load(Box<HirPlace>),
    /// Unary operation.
    Unary(UnOp, Box<HirExpr>),
    /// Binary operation; operands have identical types except shifts
    /// (result and lhs share a type) and comparisons (operands share a
    /// type, result is `Bool`).
    Binary(BinOp, Box<HirExpr>, Box<HirExpr>),
    /// `cond ? then : els` with equal-typed arms.
    Select(Box<HirExpr>, Box<HirExpr>, Box<HirExpr>),
    /// Conversion of the operand to this expression's type.
    Cast(Box<HirExpr>),
    /// Address of a place (pointer-typed result).
    AddrOf(Box<HirPlace>),
}

impl HirExpr {
    /// A constant of the given type, canonicalized.
    pub fn konst(v: i64, ty: Type) -> Self {
        let v = match &ty {
            Type::Int(it) => it.canonicalize(v),
            Type::Bool => (v != 0) as i64,
            _ => v,
        };
        HirExpr {
            kind: HirExprKind::Const(v),
            ty,
        }
    }

    /// True when this is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self.kind {
            HirExprKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Walks all places read by this expression.
    pub fn for_each_place<'a>(&'a self, f: &mut impl FnMut(&'a HirPlace)) {
        match &self.kind {
            HirExprKind::Const(_) => {}
            HirExprKind::Load(p) | HirExprKind::AddrOf(p) => f(p),
            HirExprKind::Unary(_, a) | HirExprKind::Cast(a) => a.for_each_place(f),
            HirExprKind::Binary(_, a, b) => {
                a.for_each_place(f);
                b.for_each_place(f);
            }
            HirExprKind::Select(c, t, e) => {
                c.for_each_place(f);
                t.for_each_place(f);
                e.for_each_place(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn konst_canonicalizes() {
        let e = HirExpr::konst(300, Type::uint(8));
        assert_eq!(e.as_const(), Some(44));
        let b = HirExpr::konst(7, Type::Bool);
        assert_eq!(b.as_const(), Some(1));
    }

    #[test]
    fn root_local_traverses_indices() {
        let p = HirPlace::Index {
            base: Box::new(HirPlace::Local(LocalId(3))),
            index: Box::new(HirExpr::konst(0, Type::int())),
        };
        assert_eq!(p.root_local(), Some(LocalId(3)));
        assert_eq!(HirPlace::Global(GlobalId(0)).root_local(), None);
    }

    #[test]
    fn for_each_place_visits_all() {
        let e = HirExpr {
            kind: HirExprKind::Binary(
                BinOp::Add,
                Box::new(HirExpr {
                    kind: HirExprKind::Load(Box::new(HirPlace::Local(LocalId(0)))),
                    ty: Type::int(),
                }),
                Box::new(HirExpr {
                    kind: HirExprKind::Load(Box::new(HirPlace::Local(LocalId(1)))),
                    ty: Type::int(),
                }),
            ),
            ty: Type::int(),
        };
        let mut seen = Vec::new();
        e.for_each_place(&mut |p| {
            if let HirPlace::Local(id) = p {
                seen.push(*id);
            }
        });
        assert_eq!(seen, vec![LocalId(0), LocalId(1)]);
    }

    #[test]
    fn ids_display() {
        assert_eq!(LocalId(4).to_string(), "%4");
        assert_eq!(GlobalId(1).to_string(), "@1");
        assert_eq!(FuncId(2).to_string(), "fn2");
    }
}
