//! Abstract syntax tree produced by the parser.
//!
//! The AST is untyped and name-unresolved; semantic analysis
//! ([`crate::sema`]) turns it into the typed [`crate::hir`].

use crate::span::Span;
use crate::types::Type;
use std::fmt;

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function definition (or declaration, if `body` is `None`).
    Func(FuncDecl),
    /// A global variable or constant.
    Global(VarDecl),
    /// A file-level pragma such as `#pragma clock_period 10`.
    Pragma(Pragma, Span),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Body; `None` for a bare declaration.
    pub body: Option<Block>,
    /// Source span of the signature.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (arrays decay to array-typed references).
    pub ty: Type,
    /// Source span.
    pub span: Span,
}

/// A variable declaration (global or local).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<Init>,
    /// Declared with `const`.
    pub is_const: bool,
    /// Pragmas attached to this declaration (e.g. `memory bank(4)`).
    pub pragmas: Vec<Pragma>,
    /// Source span.
    pub span: Span,
}

/// An initializer: a single expression or a brace-enclosed list.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// `= expr`
    Expr(Expr),
    /// `= { e0, e1, ... }`
    List(Vec<Expr>, Span),
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source span including the braces.
    pub span: Span,
}

/// A statement with attached pragmas and source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement itself.
    pub kind: StmtKind,
    /// Pragmas written immediately before the statement.
    pub pragmas: Vec<Pragma>,
    /// Source span.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// A local declaration.
    Decl(VarDecl),
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) then else els`
    If {
        /// Controlling condition.
        cond: Expr,
        /// Taken branch.
        then: Block,
        /// Else branch, if present.
        els: Option<Block>,
    },
    /// `while (cond) body`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition, tested after the body.
        cond: Expr,
    },
    /// `for (init; cond; step) body`
    For {
        /// Init clause (declaration or expression), if present.
        init: Option<Box<Stmt>>,
        /// Condition; `None` means always true.
        cond: Option<Expr>,
        /// Step expression, if present.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `return;` or `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block.
    Block(Block),
    /// `par { ... } { ... } ...` — run the blocks in parallel, join at the end.
    Par(Vec<Block>),
    /// `send(ch, value);`
    Send {
        /// Channel expression (must name a channel).
        chan: Expr,
        /// Value to transmit.
        value: Expr,
    },
    /// `delay;` — consume exactly one clock cycle (Handel-C).
    Delay,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(u64),
    /// `true` / `false`.
    BoolLit(bool),
    /// A name.
    Ident(String),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application (excluding assignment).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `target = value` or `target op= value` when `op` is `Some`.
    Assign {
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Assignment target (must be an lvalue).
        target: Box<Expr>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// `cond ? then : els`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// `callee(args...)`
    Call {
        /// Called function name.
        callee: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
    },
    /// `*ptr`
    Deref(Box<Expr>),
    /// `&place`
    AddrOf(Box<Expr>),
    /// `(type) expr`
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `recv(ch)` rendezvous receive.
    Recv(Box<Expr>),
    /// `++x`, `x++`, `--x`, `x--`
    IncDec {
        /// True for prefix form.
        pre: bool,
        /// True for `++`, false for `--`.
        inc: bool,
        /// The lvalue being modified.
        target: Box<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    Not,
    /// Logical negation `!`.
    LogNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
            UnOp::LogNot => "!",
        })
    }
}

/// Binary operators (assignment handled separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// True for `==`, `!=`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the short-circuiting logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        })
    }
}

/// A recognized pragma.
///
/// Pragmas either attach to the immediately following statement or
/// declaration, or (for [`Pragma::ClockPeriod`]) apply to the whole file.
#[derive(Debug, Clone, PartialEq)]
pub enum Pragma {
    /// `#pragma unroll N` — unroll the following loop N times
    /// (N = 0 means "fully").
    Unroll(u32),
    /// `#pragma constraint N` — the following compound statement must
    /// complete within N cycles (HardwareC-style relative timing constraint).
    Constraint(u32),
    /// `#pragma memory bank(K)` — split the following array declaration
    /// across K independent single-port memory banks.
    Bank(u32),
    /// `#pragma memory monolithic` — place the following array in the shared
    /// monolithic memory rather than a dedicated bank.
    Monolithic,
    /// `#pragma clock_period PS` — target clock period in picoseconds
    /// (C2Verilog-style constraint living *outside* the language).
    ClockPeriod(u64),
    /// `@ii(N)` declaration suffix — a timed-interface contract promising
    /// the declared channel is serviced at least once every N cycles
    /// (Dahlia-style initiation-interval annotation). Checked by `chls flow`.
    Ii(u32),
    /// An unrecognized pragma, preserved verbatim for diagnostics.
    Unknown(String),
}

impl Pragma {
    /// Parses a pragma body (the text after `#pragma`).
    pub fn parse(body: &str) -> Pragma {
        let mut words = body.split_whitespace();
        match words.next() {
            Some("unroll") => {
                let n = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                Pragma::Unroll(n)
            }
            Some("constraint") => {
                let n = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                Pragma::Constraint(n)
            }
            Some("memory") => match words.next() {
                Some(rest) if rest.starts_with("bank(") => {
                    let inner = rest
                        .trim_start_matches("bank(")
                        .trim_end_matches(')')
                        .parse()
                        .unwrap_or(1);
                    Pragma::Bank(inner)
                }
                Some("monolithic") => Pragma::Monolithic,
                _ => Pragma::Unknown(body.to_string()),
            },
            Some("clock_period") => {
                let n = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                Pragma::ClockPeriod(n)
            }
            _ => Pragma::Unknown(body.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_parse_unroll() {
        assert_eq!(Pragma::parse("unroll 4"), Pragma::Unroll(4));
        assert_eq!(Pragma::parse("unroll"), Pragma::Unroll(0));
    }

    #[test]
    fn pragma_parse_constraint_and_clock() {
        assert_eq!(Pragma::parse("constraint 2"), Pragma::Constraint(2));
        assert_eq!(Pragma::parse("clock_period 5000"), Pragma::ClockPeriod(5000));
    }

    #[test]
    fn pragma_parse_memory() {
        assert_eq!(Pragma::parse("memory bank(4)"), Pragma::Bank(4));
        assert_eq!(Pragma::parse("memory monolithic"), Pragma::Monolithic);
    }

    #[test]
    fn pragma_unknown_preserved() {
        assert_eq!(
            Pragma::parse("vendor xyzzy"),
            Pragma::Unknown("vendor xyzzy".to_string())
        );
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogAnd.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn operators_display() {
        assert_eq!(BinOp::Shl.to_string(), "<<");
        assert_eq!(UnOp::LogNot.to_string(), "!");
    }
}
