//! Recursive-descent parser for CHL.
//!
//! Grammar summary (C subset plus hardware extensions):
//!
//! ```text
//! program   := item*
//! item      := pragma | func | global
//! func      := type ident '(' params ')' (block | ';')
//! global    := 'const'? type declarator ('=' init)? ';'
//! stmt      := decl | if | while | do-while | for | return | break
//!            | continue | block | par | send | delay | expr ';'
//! par       := 'par' '{' stmt* '}'          // statements run in parallel
//! expr      := assignment (C precedence, right-assoc assignment, ternary)
//! type      := ('unsigned'|'signed')? ('void'|'bool'|'char'|'short'|'int'|'long')
//!            | 'uint' '<' const '>' | 'sint' '<' const '>' | 'int' '<' const '>'
//!            | 'chan' '<' type '>'
//! ```
//!
//! Array sizes must be compile-time constants; the parser const-evaluates
//! size expressions against integer literals and previously parsed global
//! `const` scalars.

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::types::{IntType, Type, MAX_WIDTH};
use std::collections::HashMap;

/// Parses a CHL source string into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic error as a [`Diagnostic`].
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Global `const` scalars seen so far, for const-evaluating array sizes.
    consts: HashMap<String, i64>,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            consts: HashMap::new(),
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                format!("expected {}, found {}", kind.describe(), self.peek().describe()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::error(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    // ----- program structure -----

    fn program(&mut self) -> PResult<Program> {
        let mut items = Vec::new();
        loop {
            let pragmas = self.collect_pragmas();
            if matches!(self.peek(), TokenKind::Eof) {
                for (p, span) in pragmas {
                    items.push(Item::Pragma(p, span));
                }
                break;
            }
            // File-level pragmas (clock_period) become items; others attach
            // to the declaration that follows.
            let mut attached = Vec::new();
            for (p, span) in pragmas {
                match p {
                    Pragma::ClockPeriod(_) => items.push(Item::Pragma(p, span)),
                    other => attached.push(other),
                }
            }
            items.push(self.item(attached)?);
        }
        Ok(Program { items })
    }

    fn collect_pragmas(&mut self) -> Vec<(Pragma, Span)> {
        let mut out = Vec::new();
        while let TokenKind::Pragma(body) = self.peek() {
            let p = Pragma::parse(body);
            let span = self.span();
            self.bump();
            out.push((p, span));
        }
        out
    }

    fn item(&mut self, pragmas: Vec<Pragma>) -> PResult<Item> {
        let start = self.span();
        let is_const = self.eat(&TokenKind::KwConst);
        let base = self.parse_type()?;
        let (name, _) = self.expect_ident()?;
        if self.peek() == &TokenKind::LParen {
            if is_const {
                return Err(Diagnostic::error("functions cannot be `const`", start));
            }
            self.bump();
            let mut params = Vec::new();
            if self.peek() != &TokenKind::RParen {
                loop {
                    params.push(self.param()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            // Accept `f(void)` as an empty parameter list.
            self.expect(TokenKind::RParen)?;
            let body = if self.eat(&TokenKind::Semi) {
                None
            } else {
                Some(self.block()?)
            };
            let span = start.to(self.prev_span());
            Ok(Item::Func(FuncDecl {
                name,
                ret_ty: base,
                params,
                body,
                span,
            }))
        } else {
            let decl = self.finish_var_decl(base, name, is_const, pragmas, start)?;
            Ok(Item::Global(decl))
        }
    }

    fn param(&mut self) -> PResult<Param> {
        let start = self.span();
        if self.peek() == &TokenKind::KwVoid && self.peek_at(1) == &TokenKind::RParen {
            self.bump();
            return Err(Diagnostic::error(
                "use `()` for an empty parameter list",
                start,
            ));
        }
        let mut ty = self.parse_type()?;
        while self.eat(&TokenKind::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        let (name, _) = self.expect_ident()?;
        // `T name[]` or `T name[N]` — arrays pass by reference (C decay).
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            if self.peek() == &TokenKind::RBracket {
                self.bump();
                dims.push(None);
            } else {
                let size = self.const_expr()?;
                self.expect(TokenKind::RBracket)?;
                dims.push(Some(size));
            }
        }
        for dim in dims.into_iter().rev() {
            match dim {
                Some(n) if n > 0 => ty = Type::Array(Box::new(ty), n as usize),
                Some(_) => {
                    return Err(Diagnostic::error("array size must be positive", start));
                }
                // `T a[]` — unknown extent; model as pointer to element.
                None => ty = Type::Ptr(Box::new(ty)),
            }
        }
        let span = start.to(self.prev_span());
        Ok(Param { name, ty, span })
    }

    /// Parses the part of a variable declaration after the base type and
    /// name, including array dimensions and an optional initializer.
    fn finish_var_decl(
        &mut self,
        mut ty: Type,
        name: String,
        is_const: bool,
        mut pragmas: Vec<Pragma>,
        start: Span,
    ) -> PResult<VarDecl> {
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let size = self.const_expr()?;
            self.expect(TokenKind::RBracket)?;
            if size <= 0 {
                return Err(Diagnostic::error("array size must be positive", start));
            }
            dims.push(size as usize);
        }
        for n in dims.into_iter().rev() {
            ty = Type::Array(Box::new(ty), n);
        }
        let init = if self.eat(&TokenKind::Assign) {
            if self.peek() == &TokenKind::LBrace {
                let lstart = self.span();
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != &TokenKind::RBrace {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.peek() == &TokenKind::RBrace {
                            break; // trailing comma
                        }
                    }
                }
                self.expect(TokenKind::RBrace)?;
                Some(Init::List(elems, lstart.to(self.prev_span())))
            } else {
                Some(Init::Expr(self.expr()?))
            }
        } else {
            None
        };
        // Optional `@ii(N)` suffix: a timed-interface contract on the decl
        // (meaningful only for channels; sema rejects other uses).
        while self.eat(&TokenKind::At) {
            let attr_span = self.prev_span();
            let (attr, _) = self.expect_ident()?;
            if attr != "ii" {
                return Err(Diagnostic::error(
                    format!("unknown declaration attribute `@{attr}` (expected `@ii(N)`)"),
                    attr_span,
                ));
            }
            self.expect(TokenKind::LParen)?;
            let n = self.const_expr()?;
            self.expect(TokenKind::RParen)?;
            if n <= 0 {
                return Err(Diagnostic::error(
                    "`@ii(N)` requires a positive interval",
                    attr_span,
                ));
            }
            pragmas.push(Pragma::Ii(n as u32));
        }
        self.expect(TokenKind::Semi)?;
        // Record scalar consts for later array-size references.
        if is_const && ty.is_scalar() {
            if let Some(Init::Expr(e)) = &init {
                if let Some(v) = self.try_const_eval(e) {
                    self.consts.insert(name.clone(), v);
                }
            }
        }
        let span = start.to(self.prev_span());
        Ok(VarDecl {
            name,
            ty,
            init,
            is_const,
            pragmas,
            span,
        })
    }

    // ----- types -----

    fn looks_like_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwVoid
                | TokenKind::KwBool
                | TokenKind::KwChar
                | TokenKind::KwShort
                | TokenKind::KwInt
                | TokenKind::KwLong
                | TokenKind::KwUnsigned
                | TokenKind::KwSigned
                | TokenKind::KwUint
                | TokenKind::KwSint
                | TokenKind::KwChan
                | TokenKind::KwConst
        )
    }

    fn parse_type(&mut self) -> PResult<Type> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::KwVoid => {
                self.bump();
                Ok(Type::Void)
            }
            TokenKind::KwBool => {
                self.bump();
                Ok(Type::Bool)
            }
            TokenKind::KwUint => {
                self.bump();
                let w = self.angle_width()?;
                Ok(Type::Int(IntType::new(w, false)))
            }
            TokenKind::KwSint => {
                self.bump();
                let w = self.angle_width()?;
                Ok(Type::Int(IntType::new(w, true)))
            }
            TokenKind::KwChan => {
                self.bump();
                self.expect(TokenKind::Lt)?;
                let elem = self.parse_type()?;
                if !elem.is_scalar() {
                    return Err(Diagnostic::error(
                        "channel element type must be scalar",
                        span,
                    ));
                }
                self.expect_gt()?;
                Ok(Type::Chan(Box::new(elem)))
            }
            TokenKind::KwUnsigned | TokenKind::KwSigned => {
                let signed = self.peek() == &TokenKind::KwSigned;
                self.bump();
                let width = match self.peek() {
                    TokenKind::KwChar => {
                        self.bump();
                        8
                    }
                    TokenKind::KwShort => {
                        self.bump();
                        16
                    }
                    TokenKind::KwInt => {
                        self.bump();
                        32
                    }
                    TokenKind::KwLong => {
                        self.bump();
                        64
                    }
                    _ => 32, // bare `unsigned` / `signed`
                };
                Ok(Type::Int(IntType::new(width, signed)))
            }
            TokenKind::KwChar => {
                self.bump();
                Ok(Type::Int(IntType::new(8, true)))
            }
            TokenKind::KwShort => {
                self.bump();
                Ok(Type::Int(IntType::new(16, true)))
            }
            TokenKind::KwInt => {
                self.bump();
                // `int<N>` is accepted as a synonym for `sint<N>`.
                if self.peek() == &TokenKind::Lt {
                    if let TokenKind::IntLit(_) = self.peek_at(1) {
                        if self.peek_at(2) == &TokenKind::Gt {
                            let w = self.angle_width()?;
                            return Ok(Type::Int(IntType::new(w, true)));
                        }
                    }
                }
                Ok(Type::int())
            }
            TokenKind::KwLong => {
                self.bump();
                // `long long` is the same 64-bit type.
                self.eat(&TokenKind::KwLong);
                Ok(Type::Int(IntType::new(64, true)))
            }
            other => Err(Diagnostic::error(
                format!("expected type, found {}", other.describe()),
                span,
            )),
        }
    }

    /// Consumes a closing `>`, splitting a `>>` token in two so nested
    /// generics like `chan<uint<8>>` parse.
    fn expect_gt(&mut self) -> PResult<()> {
        match self.peek() {
            TokenKind::Gt => {
                self.bump();
                Ok(())
            }
            TokenKind::Shr => {
                self.tokens[self.pos].kind = TokenKind::Gt;
                Ok(())
            }
            other => Err(Diagnostic::error(
                format!("expected `>`, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn angle_width(&mut self) -> PResult<u16> {
        self.expect(TokenKind::Lt)?;
        let span = self.span();
        // Additive precedence and tighter only: a full expression parse
        // would consume the closing `>` as a comparison.
        let e = self.binary(8)?;
        let w = self.try_const_eval(&e).ok_or_else(|| {
            Diagnostic::error("bit width must be a compile-time constant", span)
        })?;
        self.expect_gt()?;
        if w < 1 || w > MAX_WIDTH as i64 {
            return Err(Diagnostic::error(
                format!("bit width must be 1..={MAX_WIDTH}"),
                span,
            ));
        }
        Ok(w as u16)
    }

    // ----- constant expressions (array sizes, widths) -----

    fn const_expr(&mut self) -> PResult<i64> {
        let span = self.span();
        let e = self.expr()?;
        self.try_const_eval(&e).ok_or_else(|| {
            Diagnostic::error("expression is not a compile-time constant", span)
        })
    }

    fn try_const_eval(&self, e: &Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(*v as i64),
            ExprKind::BoolLit(b) => Some(*b as i64),
            ExprKind::Ident(name) => self.consts.get(name).copied(),
            ExprKind::Unary(op, inner) => {
                let v = self.try_const_eval(inner)?;
                Some(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::LogNot => (v == 0) as i64,
                })
            }
            ExprKind::Binary(op, l, r) => {
                let a = self.try_const_eval(l)?;
                let b = self.try_const_eval(r)?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return None;
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return None;
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::LogAnd => ((a != 0) && (b != 0)) as i64,
                    BinOp::LogOr => ((a != 0) || (b != 0)) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                })
            }
            _ => None,
        }
    }

    // ----- statements -----

    fn block(&mut self) -> PResult<Block> {
        let start = self.span();
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(Diagnostic::error("unterminated block", start));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Block {
            stmts,
            span: start.to(self.prev_span()),
        })
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let pragmas: Vec<Pragma> = self
            .collect_pragmas()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let start = self.span();
        let kind = self.stmt_kind()?;
        Ok(Stmt {
            kind,
            pragmas,
            span: start.to(self.prev_span()),
        })
    }

    fn stmt_kind(&mut self) -> PResult<StmtKind> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::LBrace => Ok(StmtKind::Block(self.block()?)),
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then = self.block_or_stmt()?;
                let els = if self.eat(&TokenKind::KwElse) {
                    Some(self.block_or_stmt()?)
                } else {
                    None
                };
                Ok(StmtKind::If { cond, then, els })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(StmtKind::While { cond, body })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = self.block_or_stmt()?;
                self.expect(TokenKind::KwWhile)?;
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::DoWhile { body, cond })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.eat(&TokenKind::Semi) {
                    None
                } else {
                    let s = self.for_init()?;
                    Some(Box::new(s))
                };
                let cond = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Return(value))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Break)
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Continue)
            }
            TokenKind::KwPar => {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                let mut branches = Vec::new();
                while self.peek() != &TokenKind::RBrace {
                    if self.peek() == &TokenKind::Eof {
                        return Err(Diagnostic::error("unterminated par block", start));
                    }
                    // Each statement of a `par` block is its own branch.
                    let s = self.stmt()?;
                    let span = s.span;
                    branches.push(Block {
                        stmts: vec![s],
                        span,
                    });
                }
                self.expect(TokenKind::RBrace)?;
                Ok(StmtKind::Par(branches))
            }
            TokenKind::KwSend => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let chan = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let value = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Send { chan, value })
            }
            TokenKind::KwDelay => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Delay)
            }
            _ if self.looks_like_type() => {
                let is_const = self.eat(&TokenKind::KwConst);
                let mut ty = self.parse_type()?;
                while self.eat(&TokenKind::Star) {
                    ty = Type::Ptr(Box::new(ty));
                }
                let (name, _) = self.expect_ident()?;
                let decl = self.finish_var_decl(ty, name, is_const, Vec::new(), start)?;
                Ok(StmtKind::Decl(decl))
            }
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Expr(e))
            }
        }
    }

    fn for_init(&mut self) -> PResult<Stmt> {
        let start = self.span();
        if self.looks_like_type() {
            let is_const = self.eat(&TokenKind::KwConst);
            let mut ty = self.parse_type()?;
            while self.eat(&TokenKind::Star) {
                ty = Type::Ptr(Box::new(ty));
            }
            let (name, _) = self.expect_ident()?;
            let decl = self.finish_var_decl(ty, name, is_const, Vec::new(), start)?;
            Ok(Stmt {
                kind: StmtKind::Decl(decl),
                pragmas: Vec::new(),
                span: start.to(self.prev_span()),
            })
        } else {
            let e = self.expr()?;
            self.expect(TokenKind::Semi)?;
            Ok(Stmt {
                kind: StmtKind::Expr(e),
                pragmas: Vec::new(),
                span: start.to(self.prev_span()),
            })
        }
    }

    /// Parses either a `{ ... }` block or a single statement wrapped in a
    /// one-statement block, so `if (c) x = 1;` works.
    fn block_or_stmt(&mut self) -> PResult<Block> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span;
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    // ----- expressions -----

    fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusAssign => Some(BinOp::Add),
            TokenKind::MinusAssign => Some(BinOp::Sub),
            TokenKind::StarAssign => Some(BinOp::Mul),
            TokenKind::SlashAssign => Some(BinOp::Div),
            TokenKind::PercentAssign => Some(BinOp::Rem),
            TokenKind::AmpAssign => Some(BinOp::BitAnd),
            TokenKind::PipeAssign => Some(BinOp::BitOr),
            TokenKind::CaretAssign => Some(BinOp::BitXor),
            TokenKind::ShlAssign => Some(BinOp::Shl),
            TokenKind::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr {
            kind: ExprKind::Assign {
                op,
                target: Box::new(lhs),
                value: Box::new(rhs),
            },
            span,
        })
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let els = self.ternary()?;
            let span = cond.span.to(els.span);
            Ok(Expr {
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Binary operator precedence table, loosest first.
    fn bin_op_at(&self, level: u8) -> Option<BinOp> {
        let op = match (level, self.peek()) {
            (0, TokenKind::PipePipe) => BinOp::LogOr,
            (1, TokenKind::AmpAmp) => BinOp::LogAnd,
            (2, TokenKind::Pipe) => BinOp::BitOr,
            (3, TokenKind::Caret) => BinOp::BitXor,
            (4, TokenKind::Amp) => BinOp::BitAnd,
            (5, TokenKind::EqEq) => BinOp::Eq,
            (5, TokenKind::Ne) => BinOp::Ne,
            (6, TokenKind::Lt) => BinOp::Lt,
            (6, TokenKind::Le) => BinOp::Le,
            (6, TokenKind::Gt) => BinOp::Gt,
            (6, TokenKind::Ge) => BinOp::Ge,
            (7, TokenKind::Shl) => BinOp::Shl,
            (7, TokenKind::Shr) => BinOp::Shr,
            (8, TokenKind::Plus) => BinOp::Add,
            (8, TokenKind::Minus) => BinOp::Sub,
            (9, TokenKind::Star) => BinOp::Mul,
            (9, TokenKind::Slash) => BinOp::Div,
            (9, TokenKind::Percent) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn binary(&mut self, level: u8) -> PResult<Expr> {
        if level > 9 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.bin_op_at(level) {
            self.bump();
            let rhs = self.binary(level + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                    span,
                })
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                    span,
                })
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::LogNot, Box::new(e)),
                    span,
                })
            }
            TokenKind::Star => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Deref(Box::new(e)),
                    span,
                })
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::AddrOf(Box::new(e)),
                    span,
                })
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let inc = self.peek() == &TokenKind::PlusPlus;
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::IncDec {
                        pre: true,
                        inc,
                        target: Box::new(e),
                    },
                    span,
                })
            }
            TokenKind::LParen if self.starts_cast() => {
                self.bump();
                let ty = self.parse_type()?;
                let mut t = ty;
                while self.eat(&TokenKind::Star) {
                    t = Type::Ptr(Box::new(t));
                }
                self.expect(TokenKind::RParen)?;
                let e = self.unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Cast {
                        ty: t,
                        expr: Box::new(e),
                    },
                    span,
                })
            }
            _ => self.postfix(),
        }
    }

    /// True when the upcoming `( ... )` is a cast, i.e. a type keyword
    /// follows the open paren.
    fn starts_cast(&self) -> bool {
        matches!(
            self.peek_at(1),
            TokenKind::KwVoid
                | TokenKind::KwBool
                | TokenKind::KwChar
                | TokenKind::KwShort
                | TokenKind::KwInt
                | TokenKind::KwLong
                | TokenKind::KwUnsigned
                | TokenKind::KwSigned
                | TokenKind::KwUint
                | TokenKind::KwSint
        )
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    };
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let inc = self.peek() == &TokenKind::PlusPlus;
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::IncDec {
                            pre: false,
                            inc,
                            target: Box::new(e),
                        },
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    span: start,
                })
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(c as u64),
                    span: start,
                })
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::BoolLit(true),
                    span: start,
                })
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::BoolLit(false),
                    span: start,
                })
            }
            TokenKind::KwRecv => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let ch = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr {
                    kind: ExprKind::Recv(Box::new(ch)),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr {
                        kind: ExprKind::Call { callee: name, args },
                        span: start.to(self.prev_span()),
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Ident(name),
                        span: start,
                    })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr {
                    kind: e.kind,
                    span: start.to(self.prev_span()),
                })
            }
            other => Err(Diagnostic::error(
                format!("expected expression, found {}", other.describe()),
                start,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {}", e.render(src)),
        }
    }

    fn first_func(p: &Program) -> &FuncDecl {
        p.items
            .iter()
            .find_map(|i| match i {
                Item::Func(f) => Some(f),
                _ => None,
            })
            .expect("no function")
    }

    #[test]
    fn parses_minimal_function() {
        let p = parse_ok("int f() { return 1; }");
        let f = first_func(&p);
        assert_eq!(f.name, "f");
        assert_eq!(f.ret_ty, Type::int());
        assert_eq!(f.body.as_ref().unwrap().stmts.len(), 1);
    }

    #[test]
    fn parses_params_and_arrays() {
        let p = parse_ok("int dot(int a[4], int b[4], int n) { return 0; }");
        let f = first_func(&p);
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].ty, Type::Array(Box::new(Type::int()), 4));
        assert_eq!(f.params[2].ty, Type::int());
    }

    #[test]
    fn unsized_array_param_is_pointer() {
        let p = parse_ok("int f(int a[]) { return a[0]; }");
        let f = first_func(&p);
        assert_eq!(f.params[0].ty, Type::Ptr(Box::new(Type::int())));
    }

    #[test]
    fn parses_bit_precise_types() {
        let p = parse_ok("uint<12> f(sint<5> x, int<7> y) { return 0; }");
        let f = first_func(&p);
        assert_eq!(f.ret_ty, Type::uint(12));
        assert_eq!(f.params[0].ty, Type::sint(5));
        assert_eq!(f.params[1].ty, Type::sint(7));
    }

    #[test]
    fn rejects_zero_width() {
        assert!(parse("uint<0> f() { return 0; }").is_err());
        assert!(parse("uint<65> f() { return 0; }").is_err());
    }

    #[test]
    fn const_array_sizes_from_globals() {
        let p = parse_ok("const int N = 4; int f() { int a[N * 2]; return 0; }");
        let f = first_func(&p);
        match &f.body.as_ref().unwrap().stmts[0].kind {
            StmtKind::Decl(d) => assert_eq!(d.ty, Type::Array(Box::new(Type::int()), 8)),
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let p = parse_ok("int f() { return 1 + 2 * 3; }");
        let f = first_func(&p);
        match &f.body.as_ref().unwrap().stmts[0].kind {
            StmtKind::Return(Some(e)) => match &e.kind {
                ExprKind::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            _ => panic!("expected return"),
        }
    }

    #[test]
    fn shift_precedence_below_additive() {
        let p = parse_ok("int f() { return 1 << 2 + 3; }");
        let f = first_func(&p);
        match &f.body.as_ref().unwrap().stmts[0].kind {
            StmtKind::Return(Some(e)) => {
                assert!(matches!(e.kind, ExprKind::Binary(BinOp::Shl, _, _)));
            }
            _ => panic!("expected return"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let p = parse_ok("int f() { int a; int b; a = b = 1; return a; }");
        let f = first_func(&p);
        match &f.body.as_ref().unwrap().stmts[2].kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Assign { value, .. } => {
                    assert!(matches!(value.kind, ExprKind::Assign { .. }));
                }
                other => panic!("expected assign, got {other:?}"),
            },
            _ => panic!("expected expr stmt"),
        }
    }

    #[test]
    fn parses_compound_assign_and_incdec() {
        parse_ok("int f() { int x = 0; x += 3; x <<= 1; x++; --x; return x; }");
    }

    #[test]
    fn parses_control_flow() {
        parse_ok(
            "int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s += i; }
                while (s > 100) s -= 1;
                do { s++; } while (s < 10);
                if (s == 3) return 1; else return s;
            }",
        );
    }

    #[test]
    fn parses_par_and_channels() {
        let p = parse_ok(
            "void f() {
                chan<int> c;
                par {
                    send(c, 42);
                    { int x = recv(c); }
                }
            }",
        );
        let f = first_func(&p);
        match &f.body.as_ref().unwrap().stmts[1].kind {
            StmtKind::Par(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected par, got {other:?}"),
        }
    }

    #[test]
    fn parses_delay() {
        parse_ok("void f() { delay; delay; }");
    }

    #[test]
    fn parses_pointers_and_addressof() {
        parse_ok(
            "int f() {
                int x = 1;
                int *p = &x;
                *p = 2;
                return x + p[0];
            }",
        );
    }

    #[test]
    fn parses_casts() {
        parse_ok("int f(int x) { return (uint<8>) x + (unsigned long) 3; }");
    }

    #[test]
    fn parses_ternary_nested() {
        parse_ok("int f(int x) { return x > 0 ? x > 10 ? 2 : 1 : 0; }");
    }

    #[test]
    fn parses_init_list() {
        let p = parse_ok("int f() { int t[3] = {1, 2, 3}; return t[0]; }");
        let f = first_func(&p);
        match &f.body.as_ref().unwrap().stmts[0].kind {
            StmtKind::Decl(d) => assert!(matches!(d.init, Some(Init::List(ref v, _)) if v.len() == 3)),
            _ => panic!("expected decl"),
        }
    }

    #[test]
    fn pragma_attaches_to_statement() {
        let p = parse_ok(
            "int f(int n) {
                int s = 0;
                #pragma unroll 4
                for (int i = 0; i < 16; i++) s += i;
                return s;
            }",
        );
        let f = first_func(&p);
        let for_stmt = &f.body.as_ref().unwrap().stmts[1];
        assert_eq!(for_stmt.pragmas, vec![Pragma::Unroll(4)]);
    }

    #[test]
    fn clock_period_pragma_is_item() {
        let p = parse_ok("#pragma clock_period 5000\nint f() { return 0; }");
        assert!(matches!(p.items[0], Item::Pragma(Pragma::ClockPeriod(5000), _)));
    }

    #[test]
    fn bank_pragma_attaches_to_global() {
        let p = parse_ok("#pragma memory bank(4)\nint table[16];\nint f() { return 0; }");
        match &p.items[0] {
            Item::Global(g) => assert_eq!(g.pragmas, vec![Pragma::Bank(4)]),
            other => panic!("expected global, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_located() {
        let err = parse("int f( { return 0; }").unwrap_err();
        assert!(err.message.contains("expected type"));
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("int f() { return 0;").is_err());
    }

    #[test]
    fn chan_type_must_be_scalar() {
        assert!(parse("void f() { chan<int[4]> c; }").is_err());
    }

    #[test]
    fn cast_vs_paren_expr() {
        // `(x)` is a parenthesized expression, not a cast.
        parse_ok("int f(int x) { return (x) + 1; }");
    }

    #[test]
    fn long_long_is_64() {
        let p = parse_ok("long long f() { return 0; }");
        assert_eq!(first_func(&p).ret_ty, Type::sint(64));
    }
}
