//! HIR → CHL source pretty-printer.
//!
//! The repair pipeline (`chls rewrite`) transforms HIR and then needs to
//! hand the result back through the *front door* — `compile_to_hir`,
//! `chls lint`, the conformance driver — so every rewritten program is
//! re-checked by exactly the machinery ordinary programs go through.
//! Printing to source (rather than threading HIR around) is what makes
//! that possible, and it also gives users a readable artifact.
//!
//! Invariants the printer maintains:
//!
//! * every emitted identifier is lexically valid (compiler temporaries
//!   like `$t3` and synthesized arrays like `$heap$int` are mangled to
//!   `__t3` / `__heap_int`), unique within its function, and not a
//!   keyword;
//! * non-parameter locals are declared at the top of the function, and
//!   only when the body actually references them;
//! * expressions are fully parenthesized, so printing is oblivious to
//!   precedence;
//! * `for` loops whose init/step are not single assignments fall back
//!   to an equivalent `while` (with `continue` repaired to run the
//!   step), so arbitrary HIR round-trips.

use crate::hir::*;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt::Write;

/// Prints a whole program. With `entry` given, only functions reachable
/// from the entry are emitted (the repair pipeline uses this to drop
/// the dead originals of rewritten recursion cycles); globals and the
/// clock-period pragma are always emitted.
pub fn print_program(prog: &HirProgram, entry: Option<&str>) -> String {
    let mut out = String::new();
    if let Some(ps) = prog.clock_period_ps {
        let _ = writeln!(out, "#pragma clock_period {ps}");
    }
    for g in &prog.globals {
        print_global(&mut out, g);
    }
    let keep: Vec<bool> = match entry.and_then(|e| prog.func_by_name(e)) {
        Some((id, _)) => reachable(prog, id),
        None => vec![true; prog.funcs.len()],
    };
    for (i, f) in prog.funcs.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if !out.is_empty() {
            out.push('\n');
        }
        print_func(&mut out, prog, f);
    }
    out
}

fn reachable(prog: &HirProgram, entry: FuncId) -> Vec<bool> {
    let mut keep = vec![false; prog.funcs.len()];
    let mut work = vec![entry];
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut keep[f.0 as usize], true) {
            continue;
        }
        work.extend(prog.func(f).callees.iter().copied());
    }
    keep
}

fn print_global(out: &mut String, g: &HirGlobal) {
    match g.bank {
        MemBank::Auto => {}
        MemBank::Banked(k) => {
            let _ = writeln!(out, "#pragma memory bank({k})");
        }
        MemBank::Monolithic => {
            let _ = writeln!(out, "#pragma memory monolithic");
        }
    }
    let Type::Array(elem, n) = &g.ty else {
        // Scalar globals are folded to constants during sema and never
        // reach HIR; tolerate one anyway.
        let _ = writeln!(out, "const {} {} = {};", g.ty, sanitize(&g.name), g.values[0]);
        return;
    };
    let vals = g.values.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
    let _ = writeln!(out, "const {} {}[{}] = {{{vals}}};", elem, sanitize(&g.name), n);
}

/// CHL keywords an identifier must not collide with.
const KEYWORDS: &[&str] = &[
    "void", "bool", "_Bool", "char", "short", "int", "long", "unsigned", "signed", "const", "if",
    "else", "while", "do", "for", "return", "break", "continue", "true", "false", "par", "chan",
    "send", "recv", "delay", "uint", "sint",
];

/// Mangles an arbitrary HIR name into a valid CHL identifier (not
/// necessarily unique — see [`Namer`]).
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if s.is_empty() || s.starts_with(|c: char| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    if s.starts_with('_') && !s.starts_with("__") {
        // `$t3` → `_t3` reads like a user name; make synthesized names
        // visibly synthetic.
        s.insert(0, '_');
    }
    if KEYWORDS.contains(&s.as_str()) {
        s.push('_');
    }
    s
}

/// Per-function unique naming of locals.
struct Namer {
    names: Vec<String>,
}

impl Namer {
    fn new(func: &HirFunc) -> Self {
        let mut taken: HashMap<String, u32> = HashMap::new();
        let mut names = Vec::with_capacity(func.locals.len());
        for l in &func.locals {
            let base = sanitize(&l.name);
            let name = match taken.get(&base) {
                None => base.clone(),
                Some(&k) => {
                    let mut k = k;
                    loop {
                        k += 1;
                        let cand = format!("{base}_{k}");
                        if !taken.contains_key(&cand) {
                            taken.insert(base.clone(), k);
                            break cand;
                        }
                    }
                }
            };
            taken.entry(name.clone()).or_insert(1);
            names.push(name);
        }
        Namer { names }
    }

    fn name(&self, id: LocalId) -> &str {
        &self.names[id.0 as usize]
    }
}

/// One variable declarator: `int x`, `uint<8> a[16]`, `int *p`,
/// `chan<int> c`.
fn declarator(ty: &Type, name: &str) -> String {
    match ty {
        Type::Array(elem, n) => format!("{elem} {name}[{n}]"),
        Type::Ptr(inner) => format!("{inner} *{name}"),
        _ => format!("{ty} {name}"),
    }
}

fn print_func(out: &mut String, prog: &HirProgram, func: &HirFunc) {
    let namer = Namer::new(func);
    let params = func
        .params()
        .map(|(id, l)| declarator(&l.ty, namer.name(id)))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "{} {}({params}) {{", func.ret_ty, sanitize(&func.name));

    // Declare the non-parameter locals the body references.
    let mut used = vec![false; func.locals.len()];
    mark_used_block(&func.body, &mut used);
    for (i, l) in func.locals.iter().enumerate() {
        if i < func.num_params || !used[i] {
            continue;
        }
        let name = namer.name(LocalId(i as u32));
        match l.bank {
            MemBank::Auto => {}
            MemBank::Banked(k) => {
                let _ = writeln!(out, "    #pragma memory bank({k})");
            }
            MemBank::Monolithic => {
                let _ = writeln!(out, "    #pragma memory monolithic");
            }
        }
        let ii = l.ii.map(|n| format!(" @ii({n})")).unwrap_or_default();
        match &l.rom {
            Some(vals) => {
                let Type::Array(elem, n) = &l.ty else {
                    unreachable!("ROM locals are arrays");
                };
                let vals = vals.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
                let _ = writeln!(out, "    const {elem} {name}[{n}] = {{{vals}}};");
            }
            None => {
                let _ = writeln!(out, "    {}{ii};", declarator(&l.ty, name));
            }
        }
    }
    print_block_stmts(out, prog, &namer, &func.body, 1);
    let _ = writeln!(out, "}}");
}

fn mark_used_block(block: &HirBlock, used: &mut [bool]) {
    for s in &block.stmts {
        mark_used_stmt(s, used);
    }
}

fn mark_used_stmt(s: &HirStmt, used: &mut [bool]) {
    match s {
        HirStmt::Assign { place: p, value, .. } => {
            mark_used_place(p, used);
            mark_used_expr(value, used);
        }
        HirStmt::Call { dst, args, .. } => {
            if let Some(d) = dst {
                mark_used_place(d, used);
            }
            for a in args {
                match a {
                    HirArg::Value(e) => mark_used_expr(e, used),
                    HirArg::Array(p) => mark_used_place(p, used),
                }
            }
        }
        HirStmt::Recv { dst, chan, .. } => {
            mark_used_place(dst, used);
            used[chan.0 as usize] = true;
        }
        HirStmt::Send { chan, value, .. } => {
            used[chan.0 as usize] = true;
            mark_used_expr(value, used);
        }
        HirStmt::If { cond, then, els } => {
            mark_used_expr(cond, used);
            mark_used_block(then, used);
            mark_used_block(els, used);
        }
        HirStmt::While { cond, body, .. } | HirStmt::DoWhile { body, cond } => {
            mark_used_expr(cond, used);
            mark_used_block(body, used);
        }
        HirStmt::For { init, cond, step, body, .. } => {
            mark_used_block(init, used);
            mark_used_expr(cond, used);
            mark_used_block(step, used);
            mark_used_block(body, used);
        }
        HirStmt::Return(Some(e)) => mark_used_expr(e, used),
        HirStmt::Return(None) | HirStmt::Break | HirStmt::Continue | HirStmt::Delay => {}
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => mark_used_block(b, used),
        HirStmt::Par(arms) => {
            for a in arms {
                mark_used_block(a, used);
            }
        }
    }
}

fn mark_used_place(p: &HirPlace, used: &mut [bool]) {
    match p {
        HirPlace::Local(id) => used[id.0 as usize] = true,
        HirPlace::Global(_) => {}
        HirPlace::Index { base, index } => {
            mark_used_place(base, used);
            mark_used_expr(index, used);
        }
        HirPlace::Deref(e) => mark_used_expr(e, used),
    }
}

fn mark_used_expr(e: &HirExpr, used: &mut [bool]) {
    match &e.kind {
        HirExprKind::Const(_) => {}
        HirExprKind::Load(p) | HirExprKind::AddrOf(p) => mark_used_place(p, used),
        HirExprKind::Unary(_, a) | HirExprKind::Cast(a) => mark_used_expr(a, used),
        HirExprKind::Binary(_, a, b) => {
            mark_used_expr(a, used);
            mark_used_expr(b, used);
        }
        HirExprKind::Select(c, t, f) => {
            mark_used_expr(c, used);
            mark_used_expr(t, used);
            mark_used_expr(f, used);
        }
    }
}

// ------------------------------------------------------------ statements

struct Ctx<'a> {
    prog: &'a HirProgram,
    namer: &'a Namer,
}

fn print_block_stmts(
    out: &mut String,
    prog: &HirProgram,
    namer: &Namer,
    block: &HirBlock,
    depth: usize,
) {
    let ctx = Ctx { prog, namer };
    for s in &block.stmts {
        print_stmt(out, &ctx, s, depth);
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_braced(out: &mut String, ctx: &Ctx, block: &HirBlock, depth: usize) {
    out.push_str("{\n");
    for s in &block.stmts {
        print_stmt(out, ctx, s, depth + 1);
    }
    indent(out, depth);
    out.push('}');
}

/// A single `x = e` assignment rendered without the trailing `;`, if the
/// block is exactly that (the `for`-header form).
fn single_assign(ctx: &Ctx, block: &HirBlock) -> Option<String> {
    match block.stmts.as_slice() {
        [HirStmt::Assign { place, value, .. }] => {
            Some(format!("{} = {}", print_place(ctx, place), print_expr(ctx, value)))
        }
        _ => None,
    }
}

/// Replaces `continue` at this loop's level with `{ step; continue; }`,
/// for the `for`→`while` fallback.
fn repair_continue(ctx: &Ctx, out: &mut String, body: &HirBlock, step: &HirBlock, depth: usize) {
    out.push_str("{\n");
    for s in &body.stmts {
        print_stmt_with_continue(out, ctx, s, step, depth + 1);
    }
    for s in &step.stmts {
        print_stmt(out, ctx, s, depth + 1);
    }
    indent(out, depth);
    out.push('}');
}

fn print_stmt_with_continue(out: &mut String, ctx: &Ctx, s: &HirStmt, step: &HirBlock, depth: usize) {
    match s {
        HirStmt::Continue => {
            indent(out, depth);
            out.push_str("{\n");
            for st in &step.stmts {
                print_stmt(out, ctx, st, depth + 1);
            }
            indent(out, depth + 1);
            out.push_str("continue;\n");
            indent(out, depth);
            out.push_str("}\n");
        }
        HirStmt::If { cond, then, els } => {
            indent(out, depth);
            let _ = write!(out, "if ({}) ", print_expr(ctx, cond));
            out.push_str("{\n");
            for st in &then.stmts {
                print_stmt_with_continue(out, ctx, st, step, depth + 1);
            }
            indent(out, depth);
            out.push('}');
            if !els.stmts.is_empty() {
                out.push_str(" else {\n");
                for st in &els.stmts {
                    print_stmt_with_continue(out, ctx, st, step, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
            out.push('\n');
        }
        HirStmt::Block(b) => {
            indent(out, depth);
            out.push_str("{\n");
            for st in &b.stmts {
                print_stmt_with_continue(out, ctx, st, step, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        // `continue` inside a nested loop binds to that loop: print as-is.
        _ => print_stmt(out, ctx, s, depth),
    }
}

fn print_stmt(out: &mut String, ctx: &Ctx, s: &HirStmt, depth: usize) {
    match s {
        HirStmt::Assign { place, value, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "{} = {};", print_place(ctx, place), print_expr(ctx, value));
        }
        HirStmt::Call { dst, func, args, .. } => {
            indent(out, depth);
            let callee = sanitize(&ctx.prog.func(*func).name);
            let args = args
                .iter()
                .map(|a| match a {
                    HirArg::Value(e) => print_expr(ctx, e),
                    HirArg::Array(p) => print_place(ctx, p),
                })
                .collect::<Vec<_>>()
                .join(", ");
            match dst {
                Some(d) => {
                    let _ = writeln!(out, "{} = {callee}({args});", print_place(ctx, d));
                }
                None => {
                    let _ = writeln!(out, "{callee}({args});");
                }
            }
        }
        HirStmt::Recv { dst, chan, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "{} = recv({});", print_place(ctx, dst), ctx.namer.name(*chan));
        }
        HirStmt::Send { chan, value, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "send({}, {});", ctx.namer.name(*chan), print_expr(ctx, value));
        }
        HirStmt::If { cond, then, els } => {
            indent(out, depth);
            let _ = write!(out, "if ({}) ", print_expr(ctx, cond));
            print_braced(out, ctx, then, depth);
            if !els.stmts.is_empty() {
                out.push_str(" else ");
                print_braced(out, ctx, els, depth);
            }
            out.push('\n');
        }
        HirStmt::While { cond, body, unroll } => {
            if let Some(n) = unroll {
                indent(out, depth);
                let _ = writeln!(out, "#pragma unroll {n}");
            }
            indent(out, depth);
            let _ = write!(out, "while ({}) ", print_expr(ctx, cond));
            print_braced(out, ctx, body, depth);
            out.push('\n');
        }
        HirStmt::DoWhile { body, cond } => {
            indent(out, depth);
            out.push_str("do ");
            print_braced(out, ctx, body, depth);
            let _ = writeln!(out, " while ({});", print_expr(ctx, cond));
        }
        HirStmt::For { init, cond, step, body, unroll } => {
            if let Some(n) = unroll {
                indent(out, depth);
                let _ = writeln!(out, "#pragma unroll {n}");
            }
            match (single_assign(ctx, init), single_assign(ctx, step)) {
                (Some(i), Some(st)) => {
                    indent(out, depth);
                    let _ = write!(out, "for ({i}; {}; {st}) ", print_expr(ctx, cond));
                    print_braced(out, ctx, body, depth);
                    out.push('\n');
                }
                _ => {
                    // Init or step is not a single assignment: emit the
                    // equivalent while-loop (continues run the step).
                    for s in &init.stmts {
                        print_stmt(out, ctx, s, depth);
                    }
                    indent(out, depth);
                    let _ = write!(out, "while ({}) ", print_expr(ctx, cond));
                    repair_continue(ctx, out, body, step, depth);
                    out.push('\n');
                }
            }
        }
        HirStmt::Return(e) => {
            indent(out, depth);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(ctx, e));
                }
                None => out.push_str("return;\n"),
            }
        }
        HirStmt::Break => {
            indent(out, depth);
            out.push_str("break;\n");
        }
        HirStmt::Continue => {
            indent(out, depth);
            out.push_str("continue;\n");
        }
        HirStmt::Block(b) => {
            indent(out, depth);
            print_braced(out, ctx, b, depth);
            out.push('\n');
        }
        HirStmt::Par(arms) => {
            indent(out, depth);
            out.push_str("par {\n");
            for a in arms {
                indent(out, depth + 1);
                print_braced(out, ctx, a, depth + 1);
                out.push('\n');
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        HirStmt::Delay => {
            indent(out, depth);
            out.push_str("delay;\n");
        }
        HirStmt::Constraint { cycles, body } => {
            indent(out, depth);
            let _ = writeln!(out, "#pragma constraint {cycles}");
            indent(out, depth);
            print_braced(out, ctx, body, depth);
            out.push('\n');
        }
    }
}

// ----------------------------------------------------------- expressions

fn print_place(ctx: &Ctx, p: &HirPlace) -> String {
    match p {
        HirPlace::Local(id) => ctx.namer.name(*id).to_string(),
        HirPlace::Global(id) => sanitize(&ctx.prog.global(*id).name),
        HirPlace::Index { base, index } => {
            format!("{}[{}]", print_place(ctx, base), print_expr(ctx, index))
        }
        HirPlace::Deref(e) => format!("*{}", print_expr_atom(ctx, e)),
    }
}

/// Prints an expression, parenthesized unless atomic.
fn print_expr_atom(ctx: &Ctx, e: &HirExpr) -> String {
    match &e.kind {
        HirExprKind::Const(_) | HirExprKind::Load(_) => print_expr(ctx, e),
        _ => print_expr(ctx, e),
    }
}

fn print_expr(ctx: &Ctx, e: &HirExpr) -> String {
    match &e.kind {
        HirExprKind::Const(v) => match &e.ty {
            Type::Bool => if *v != 0 { "true" } else { "false" }.to_string(),
            _ => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    v.to_string()
                }
            }
        },
        HirExprKind::Load(p) => print_place(ctx, p),
        HirExprKind::Unary(op, a) => format!("({op}{})", print_expr(ctx, a)),
        HirExprKind::Binary(op, a, b) => {
            format!("({} {op} {})", print_expr(ctx, a), print_expr(ctx, b))
        }
        HirExprKind::Select(c, t, f) => format!(
            "({} ? {} : {})",
            print_expr(ctx, c),
            print_expr(ctx, t),
            print_expr(ctx, f)
        ),
        HirExprKind::Cast(a) => format!("(({})({}))", e.ty, print_expr(ctx, a)),
        HirExprKind::AddrOf(p) => format!("(&{})", print_place(ctx, p)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::compile_to_hir;

    fn roundtrip(src: &str) -> (HirProgram, HirProgram, String) {
        let a = compile_to_hir(src).expect("original compiles");
        let printed = print_program(&a, None);
        let b = compile_to_hir(&printed)
            .unwrap_or_else(|e| panic!("printed source fails sema:\n{printed}\n{}", e.render(&printed)));
        (a, b, printed)
    }

    #[test]
    fn roundtrips_gcd() {
        let (a, b, _) = roundtrip(
            "int main(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
        );
        assert_eq!(a.funcs.len(), b.funcs.len());
    }

    #[test]
    fn roundtrips_counted_loops_and_globals() {
        roundtrip(
            "const int coeff[4] = {1, 2, 3, 4};
             void main(int x[8], int y[8]) {
                 for (int n = 0; n < 8; n++) {
                     int acc = 0;
                     for (int k = 0; k < 4; k++) {
                         if (n >= k) { acc = acc + coeff[k] * x[n - k]; }
                     }
                     y[n] = acc;
                 }
             }",
        );
    }

    #[test]
    fn roundtrips_casts_ternary_bools() {
        roundtrip(
            "int main(uint<8> x, int y) {
                 bool p = x > (uint<8>) 3 && y < 10;
                 return p ? (int) x : -y;
             }",
        );
    }

    #[test]
    fn roundtrips_channels_and_par() {
        roundtrip(
            "int main() {
                 chan<int> c;
                 int out = 0;
                 par {
                     { for (int i = 0; i < 4; i++) send(c, i + 1); }
                     { for (int j = 0; j < 4; j++) out += recv(c); }
                 }
                 return out;
             }",
        );
    }

    #[test]
    fn roundtrips_pointers() {
        roundtrip(
            "void main(int a[4]) {
                 int *p = &a[0];
                 *p = 1;
                 p = p + 1;
                 *p = 2;
             }",
        );
    }

    #[test]
    fn mangles_dollar_temps() {
        // `f(x) + f(y)` forces `$t` temporaries; they must print as
        // valid identifiers.
        let (_, _, printed) = roundtrip(
            "int f(int n) { return n + 1; }
             int main(int x, int y) { return f(x) + f(y); }",
        );
        assert!(!printed.contains('$'), "{printed}");
    }

    #[test]
    fn uniquifies_shadowed_locals() {
        roundtrip(
            "int main(int n) {
                 int acc = 0;
                 { int t = n + 1; acc = acc + t; }
                 { int t = n + 2; acc = acc + t; }
                 return acc;
             }",
        );
    }

    #[test]
    fn reachability_drops_uncalled_functions() {
        let p = compile_to_hir(
            "int helper(int n) { return n; }
             int other(int n) { return n * 2; }
             int main(int x) { return helper(x); }",
        )
        .expect("compiles");
        let printed = print_program(&p, Some("main"));
        assert!(printed.contains("helper"));
        assert!(!printed.contains("other"), "{printed}");
    }
}
