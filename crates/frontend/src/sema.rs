//! Semantic analysis: AST → typed [`crate::hir`].
//!
//! Responsibilities:
//!
//! * name resolution (scoped locals, global constants, functions);
//! * type checking with C's usual arithmetic conversions extended to
//!   bit-precise widths (explicit [`HirExprKind::Cast`] nodes are inserted);
//! * side-effect normalization: assignments, `++`/`--`, calls, and `recv`
//!   embedded in expressions are hoisted into statements with temporaries,
//!   evaluated left-to-right;
//! * desugaring: `&&`/`||` become [`HirExprKind::Select`] (both operands are
//!   evaluated — hardware evaluates both sides anyway, and CHL expressions
//!   cannot trap since `x / 0 == 0` by definition); compound assignment and
//!   `++`/`--` become plain assignments;
//! * structural checks: `break`/`continue` inside loops only, no recursion
//!   (rejected as in NEC's Cyber), mutable globals rejected, channels used
//!   only with `send`/`recv`;
//! * pragma attachment: `unroll` onto loops, `constraint` onto blocks,
//!   `memory bank(K)`/`monolithic` onto array declarations, `clock_period`
//!   onto the program.

use crate::ast::{self, BinOp, Expr, ExprKind, Init, Item, Pragma, Stmt, StmtKind, UnOp};
use crate::diag::{Diagnostic, FrontendError};
use crate::hir::*;
use crate::span::Span;
use crate::types::Type;
use std::collections::HashMap;

/// Runs semantic analysis over a parsed program.
///
/// # Errors
///
/// Returns all diagnostics collected before analysis had to stop.
pub fn analyze(program: &ast::Program) -> Result<HirProgram, FrontendError> {
    let prog = analyze_relaxed(program)?;
    check_no_recursion(&prog)?;
    Ok(prog)
}

/// [`analyze`] without the recursion rejection: every other semantic
/// check still applies. This is the entry point for the repair pipeline
/// (`chls rewrite`), which needs typed HIR for recursive programs so it
/// can bound and rewrite them; ordinary compilation must keep using
/// [`analyze`].
pub fn analyze_relaxed(program: &ast::Program) -> Result<HirProgram, FrontendError> {
    let mut ctx = SemaCtx::default();
    ctx.collect_items(program)?;
    let mut funcs = Vec::new();
    for (id, decl) in ctx.func_decls.iter().enumerate() {
        let f = FnLower::new(&ctx, FuncId(id as u32)).lower(decl)?;
        funcs.push(f);
    }
    let mut warnings = Vec::new();
    for f in &funcs {
        warnings.extend(unused_local_warnings(f));
    }
    Ok(HirProgram {
        funcs,
        globals: ctx.globals,
        clock_period_ps: ctx.clock_period_ps,
        warnings,
    })
}

/// Warns about named scalar locals that are assigned but never read.
///
/// Parameters, compiler temporaries (`$tN`), channels, arrays, and any
/// local whose address is taken are exempt; an unread store to the rest is
/// almost always a bug the timing rules will silently charge cycles for.
fn unused_local_warnings(func: &HirFunc) -> Vec<Diagnostic> {
    #[derive(Default)]
    struct Uses {
        read: Vec<bool>,
        addr_taken: Vec<bool>,
        first_write: Vec<Option<Span>>,
    }
    impl Uses {
        fn place_read(&mut self, p: &HirPlace) {
            match p {
                HirPlace::Local(id) => self.read[id.0 as usize] = true,
                HirPlace::Global(_) => {}
                HirPlace::Index { base, index } => {
                    self.place_read(base);
                    self.expr(index);
                }
                HirPlace::Deref(ptr) => self.expr(ptr),
            }
        }
        fn place_written(&mut self, p: &HirPlace, span: Span) {
            match p {
                HirPlace::Local(id) => {
                    let slot = &mut self.first_write[id.0 as usize];
                    if slot.is_none() {
                        *slot = Some(span);
                    }
                }
                HirPlace::Global(_) => {}
                // Writing one element still needs the whole array live.
                HirPlace::Index { base, index } => {
                    self.place_read(base);
                    self.expr(index);
                }
                HirPlace::Deref(ptr) => self.expr(ptr),
            }
        }
        fn expr(&mut self, e: &HirExpr) {
            match &e.kind {
                HirExprKind::Const(_) => {}
                HirExprKind::Load(p) => self.place_read(p),
                HirExprKind::Unary(_, a) | HirExprKind::Cast(a) => self.expr(a),
                HirExprKind::Binary(_, a, b) => {
                    self.expr(a);
                    self.expr(b);
                }
                HirExprKind::Select(c, t, f) => {
                    self.expr(c);
                    self.expr(t);
                    self.expr(f);
                }
                HirExprKind::AddrOf(p) => {
                    if let Some(id) = p.root_local() {
                        self.addr_taken[id.0 as usize] = true;
                    }
                    self.place_read(p);
                }
            }
        }
        fn block(&mut self, b: &HirBlock) {
            for s in &b.stmts {
                self.stmt(s);
            }
        }
        fn stmt(&mut self, s: &HirStmt) {
            match s {
                HirStmt::Assign { place, value, span } => {
                    self.place_written(place, *span);
                    self.expr(value);
                }
                HirStmt::Call {
                    dst, args, span, ..
                } => {
                    if let Some(p) = dst {
                        self.place_written(p, *span);
                    }
                    for a in args {
                        match a {
                            HirArg::Value(e) => self.expr(e),
                            // By-reference arrays may be written or read
                            // inside the callee; treat as both.
                            HirArg::Array(p) => self.place_read(p),
                        }
                    }
                }
                HirStmt::Recv { dst, chan, span } => {
                    self.place_written(dst, *span);
                    self.read[chan.0 as usize] = true;
                }
                HirStmt::Send { chan, value, .. } => {
                    self.read[chan.0 as usize] = true;
                    self.expr(value);
                }
                HirStmt::If { cond, then, els } => {
                    self.expr(cond);
                    self.block(then);
                    self.block(els);
                }
                HirStmt::While { cond, body, .. } => {
                    self.expr(cond);
                    self.block(body);
                }
                HirStmt::DoWhile { body, cond } => {
                    self.block(body);
                    self.expr(cond);
                }
                HirStmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    self.block(init);
                    self.expr(cond);
                    self.block(step);
                    self.block(body);
                }
                HirStmt::Return(v) => {
                    if let Some(e) = v {
                        self.expr(e);
                    }
                }
                HirStmt::Break | HirStmt::Continue | HirStmt::Delay => {}
                HirStmt::Block(b) => self.block(b),
                HirStmt::Par(arms) => {
                    for arm in arms {
                        self.block(arm);
                    }
                }
                HirStmt::Constraint { body, .. } => self.block(body),
            }
        }
    }

    let n = func.locals.len();
    let mut uses = Uses {
        read: vec![false; n],
        addr_taken: vec![false; n],
        first_write: vec![None; n],
    };
    uses.block(&func.body);
    let mut out = Vec::new();
    for (i, local) in func.locals.iter().enumerate() {
        if local.is_param || local.name.starts_with("$t") || !local.ty.is_scalar() {
            continue;
        }
        if uses.read[i] || uses.addr_taken[i] {
            continue;
        }
        if let Some(span) = uses.first_write[i] {
            out.push(Diagnostic::warning(
                format!(
                    "local `{}` in `{}` is assigned but its value is never read",
                    local.name, func.name
                ),
                span,
            ));
        }
    }
    out
}

/// A name binding visible in some scope.
#[derive(Debug, Clone)]
enum Binding {
    Local(LocalId),
    Global(GlobalId),
    Const(i64, Type),
}

#[derive(Default)]
struct SemaCtx {
    func_decls: Vec<ast::FuncDecl>,
    func_names: HashMap<String, FuncId>,
    globals: Vec<HirGlobal>,
    global_bindings: HashMap<String, Binding>,
    clock_period_ps: Option<u64>,
}

impl SemaCtx {
    fn collect_items(&mut self, program: &ast::Program) -> Result<(), FrontendError> {
        for item in &program.items {
            match item {
                Item::Pragma(Pragma::ClockPeriod(ps), _) => {
                    self.clock_period_ps = Some(*ps);
                }
                Item::Pragma(..) => {}
                Item::Func(f) => {
                    if let Some(&id) = self.func_names.get(&f.name) {
                        // A bodyless forward declaration may be completed
                        // by exactly one later definition with the same
                        // signature (this is what lets mutually recursive
                        // functions name each other before definition).
                        let prev = &self.func_decls[id.0 as usize];
                        if prev.body.is_some() || f.body.is_none() {
                            return Err(err(format!("duplicate function `{}`", f.name), f.span));
                        }
                        if prev.ret_ty != f.ret_ty
                            || prev.params.len() != f.params.len()
                            || prev
                                .params
                                .iter()
                                .zip(&f.params)
                                .any(|(a, b)| a.ty != b.ty)
                        {
                            return Err(err(
                                format!(
                                    "definition of `{}` does not match its forward declaration",
                                    f.name
                                ),
                                f.span,
                            ));
                        }
                        self.func_decls[id.0 as usize] = f.clone();
                        continue;
                    }
                    let id = FuncId(self.func_decls.len() as u32);
                    self.func_names.insert(f.name.clone(), id);
                    self.func_decls.push(f.clone());
                }
                Item::Global(g) => self.collect_global(g)?,
            }
        }
        for f in &self.func_decls {
            if f.body.is_none() {
                return Err(err(
                    format!("function `{}` has no body; CHL has no linker", f.name),
                    f.span,
                ));
            }
        }
        Ok(())
    }

    fn collect_global(&mut self, g: &ast::VarDecl) -> Result<(), FrontendError> {
        if !g.is_const {
            return Err(err(
                format!(
                    "global `{}` must be `const`; pass mutable state explicitly",
                    g.name
                ),
                g.span,
            ));
        }
        if self.global_bindings.contains_key(&g.name) {
            return Err(err(format!("duplicate global `{}`", g.name), g.span));
        }
        let binding = match (&g.ty, &g.init) {
            (t, Some(Init::Expr(e))) if t.is_scalar() => {
                let v = const_eval(e, &self.global_bindings)
                    .ok_or_else(|| err("global initializer must be constant", g.span))?;
                let v = canonical(v, t);
                Binding::Const(v, t.clone())
            }
            (Type::Array(elem, n), Some(Init::List(elems, span))) => {
                if !elem.is_scalar() {
                    return Err(err("only 1-D constant arrays are supported", g.span));
                }
                if elems.len() > *n {
                    return Err(err("too many initializers", *span));
                }
                let mut values = Vec::with_capacity(*n);
                for e in elems {
                    let v = const_eval(e, &self.global_bindings)
                        .ok_or_else(|| err("array initializer must be constant", e.span))?;
                    values.push(canonical(v, elem));
                }
                values.resize(*n, 0);
                let id = GlobalId(self.globals.len() as u32);
                let bank = bank_from_pragmas(&g.pragmas);
                self.globals.push(HirGlobal {
                    name: g.name.clone(),
                    ty: g.ty.clone(),
                    values,
                    bank,
                });
                Binding::Global(id)
            }
            (Type::Array(..), _) => {
                return Err(err("constant array needs a `{...}` initializer", g.span));
            }
            _ => return Err(err("global constant needs an initializer", g.span)),
        };
        self.global_bindings.insert(g.name.clone(), binding);
        Ok(())
    }
}

fn bank_from_pragmas(pragmas: &[Pragma]) -> MemBank {
    for p in pragmas {
        match p {
            Pragma::Bank(k) => return MemBank::Banked((*k).max(1)),
            Pragma::Monolithic => return MemBank::Monolithic,
            _ => {}
        }
    }
    MemBank::Auto
}

fn err(message: impl Into<String>, span: Span) -> FrontendError {
    FrontendError::single(Diagnostic::error(message, span))
}

fn canonical(v: i64, ty: &Type) -> i64 {
    match ty {
        Type::Int(it) => it.canonicalize(v),
        Type::Bool => (v != 0) as i64,
        _ => v,
    }
}

/// Constant evaluation against global bindings (for global initializers).
fn const_eval(e: &Expr, globals: &HashMap<String, Binding>) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v as i64),
        ExprKind::BoolLit(b) => Some(*b as i64),
        ExprKind::Ident(name) => match globals.get(name) {
            Some(Binding::Const(v, _)) => Some(*v),
            _ => None,
        },
        ExprKind::Unary(op, inner) => {
            let v = const_eval(inner, globals)?;
            Some(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => !v,
                UnOp::LogNot => (v == 0) as i64,
            })
        }
        ExprKind::Binary(op, l, r) => {
            let a = const_eval(l, globals)?;
            let b = const_eval(r, globals)?;
            eval_binop_i64(*op, a, b)
        }
        ExprKind::Cast { ty, expr } => {
            let v = const_eval(expr, globals)?;
            Some(canonical(v, ty))
        }
        _ => None,
    }
}

fn eval_binop_i64(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => a.wrapping_shr(b as u32),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::LogAnd => ((a != 0) && (b != 0)) as i64,
        BinOp::LogOr => ((a != 0) || (b != 0)) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
    })
}

struct FnLower<'a> {
    ctx: &'a SemaCtx,
    locals: Vec<HirLocal>,
    scopes: Vec<HashMap<String, Binding>>,
    loop_depth: usize,
    par_depth: usize,
    callees: Vec<FuncId>,
    uses_par: bool,
    uses_channels: bool,
    ret_ty: Type,
    temp_count: u32,
}

impl<'a> FnLower<'a> {
    fn new(ctx: &'a SemaCtx, _id: FuncId) -> Self {
        FnLower {
            ctx,
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
            par_depth: 0,
            callees: Vec::new(),
            uses_par: false,
            uses_channels: false,
            ret_ty: Type::Void,
            temp_count: 0,
        }
    }

    fn lower(mut self, decl: &ast::FuncDecl) -> Result<HirFunc, FrontendError> {
        self.ret_ty = decl.ret_ty.clone();
        if !matches!(decl.ret_ty, Type::Void | Type::Bool | Type::Int(_)) {
            return Err(err(
                "functions must return void or a scalar",
                decl.span,
            ));
        }
        for p in &decl.params {
            if matches!(p.ty, Type::Void | Type::Chan(_)) {
                return Err(err(
                    format!("parameter `{}` has invalid type `{}`", p.name, p.ty),
                    p.span,
                ));
            }
            let id = self.add_local(&p.name, p.ty.clone(), true, MemBank::Auto, None);
            self.bind(&p.name, Binding::Local(id), p.span)?;
        }
        let num_params = decl.params.len();
        let body_ast = decl.body.as_ref().expect("checked in collect_items");
        let body = self.lower_block(body_ast)?;
        Ok(HirFunc {
            name: decl.name.clone(),
            ret_ty: decl.ret_ty.clone(),
            num_params,
            locals: self.locals,
            body,
            callees: self.callees,
            uses_par: self.uses_par,
            uses_channels: self.uses_channels,
        })
    }

    fn add_local(
        &mut self,
        name: &str,
        ty: Type,
        is_param: bool,
        bank: MemBank,
        rom: Option<Vec<i64>>,
    ) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(HirLocal {
            name: name.to_string(),
            ty,
            is_param,
            bank,
            rom,
            ii: None,
        });
        id
    }

    fn fresh_temp(&mut self, ty: Type) -> LocalId {
        let name = format!("$t{}", self.temp_count);
        self.temp_count += 1;
        self.add_local(&name, ty, false, MemBank::Auto, None)
    }

    fn bind(&mut self, name: &str, binding: Binding, span: Span) -> Result<(), FrontendError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(err(format!("`{name}` is already defined in this scope"), span));
        }
        scope.insert(name.to_string(), binding);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b.clone());
            }
        }
        self.ctx.global_bindings.get(name).cloned()
    }

    fn local_ty(&self, id: LocalId) -> &Type {
        &self.locals[id.0 as usize].ty
    }

    // ----- statements -----

    fn lower_block(&mut self, block: &ast::Block) -> Result<HirBlock, FrontendError> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for stmt in &block.stmts {
            self.lower_stmt(stmt, &mut out)?;
        }
        self.scopes.pop();
        Ok(HirBlock { stmts: out })
    }

    fn lower_stmt(&mut self, stmt: &Stmt, out: &mut Vec<HirStmt>) -> Result<(), FrontendError> {
        let unroll = stmt.pragmas.iter().find_map(|p| match p {
            Pragma::Unroll(n) => Some(*n),
            _ => None,
        });
        let constraint = stmt.pragmas.iter().find_map(|p| match p {
            Pragma::Constraint(n) => Some(*n),
            _ => None,
        });
        match &stmt.kind {
            StmtKind::Decl(decl) => {
                // Pragmas written before a declaration statement attach to
                // the declaration (e.g. `#pragma memory monolithic`).
                if decl.pragmas.is_empty() && !stmt.pragmas.is_empty() {
                    let mut with = decl.clone();
                    with.pragmas = stmt.pragmas.clone();
                    return self.lower_decl(&with, out);
                }
                self.lower_decl(decl, out)
            }
            StmtKind::Expr(e) => {
                // Evaluate for side effects; a pure result is discarded.
                let lowered = self.lower_expr_allow_void(e, out)?;
                if let Some(expr) = lowered {
                    // Keep call/recv results out; pure loads are dropped.
                    let _ = expr;
                }
                Ok(())
            }
            StmtKind::If { cond, then, els } => {
                let cond = self.lower_cond(cond, out)?;
                let then = self.lower_block(then)?;
                let els = match els {
                    Some(b) => self.lower_block(b)?,
                    None => HirBlock::default(),
                };
                out.push(HirStmt::If { cond, then, els });
                Ok(())
            }
            StmtKind::While { cond, body } => {
                // Side effects in the condition must re-run each iteration;
                // require the condition to be effect-free for loops.
                let cond = self.lower_loop_cond(cond)?;
                self.loop_depth += 1;
                let body = self.lower_block(body)?;
                self.loop_depth -= 1;
                out.push(HirStmt::While { cond, body, unroll });
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let cond = self.lower_loop_cond(cond)?;
                self.loop_depth += 1;
                let body = self.lower_block(body)?;
                self.loop_depth -= 1;
                out.push(HirStmt::DoWhile { body, cond });
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let mut init_stmts = Vec::new();
                if let Some(s) = init {
                    self.lower_stmt(s, &mut init_stmts)?;
                }
                let cond = match cond {
                    Some(c) => self.lower_loop_cond(c)?,
                    None => HirExpr::konst(1, Type::Bool),
                };
                let mut step_stmts = Vec::new();
                if let Some(s) = step {
                    self.lower_expr_allow_void(s, &mut step_stmts)?;
                }
                self.loop_depth += 1;
                let body = self.lower_block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                out.push(HirStmt::For {
                    init: HirBlock { stmts: init_stmts },
                    cond,
                    step: HirBlock { stmts: step_stmts },
                    body,
                    unroll,
                });
                Ok(())
            }
            StmtKind::Return(value) => {
                if self.par_depth > 0 {
                    return Err(err("`return` inside `par` is not synthesizable", stmt.span));
                }
                let value = match (value, &self.ret_ty) {
                    (None, Type::Void) => None,
                    (None, _) => {
                        return Err(err("non-void function must return a value", stmt.span));
                    }
                    (Some(_), Type::Void) => {
                        return Err(err("void function cannot return a value", stmt.span));
                    }
                    (Some(e), ret_ty) => {
                        let ret_ty = ret_ty.clone();
                        let v = self.lower_expr(e, out)?;
                        Some(self.coerce(v, &ret_ty, e.span)?)
                    }
                };
                out.push(HirStmt::Return(value));
                Ok(())
            }
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    return Err(err("`break` outside of a loop", stmt.span));
                }
                out.push(HirStmt::Break);
                Ok(())
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(err("`continue` outside of a loop", stmt.span));
                }
                out.push(HirStmt::Continue);
                Ok(())
            }
            StmtKind::Block(b) => {
                let block = self.lower_block(b)?;
                match constraint {
                    Some(cycles) => out.push(HirStmt::Constraint {
                        cycles,
                        body: block,
                    }),
                    None => out.push(HirStmt::Block(block)),
                }
                Ok(())
            }
            StmtKind::Par(branches) => {
                self.uses_par = true;
                // `break`/`continue` may not cross a par boundary.
                let saved_depth = std::mem::replace(&mut self.loop_depth, 0);
                self.par_depth += 1;
                let mut lowered = Vec::new();
                for b in branches {
                    lowered.push(self.lower_block(b)?);
                }
                self.par_depth -= 1;
                self.loop_depth = saved_depth;
                out.push(HirStmt::Par(lowered));
                Ok(())
            }
            StmtKind::Send { chan, value } => {
                let chan_id = self.channel_local(chan)?;
                let elem_ty = match self.local_ty(chan_id) {
                    Type::Chan(elem) => (**elem).clone(),
                    _ => unreachable!("channel_local checks the type"),
                };
                self.uses_channels = true;
                let v = self.lower_expr(value, out)?;
                let v = self.coerce(v, &elem_ty, value.span)?;
                out.push(HirStmt::Send {
                    chan: chan_id,
                    value: v,
                    span: stmt.span,
                });
                Ok(())
            }
            StmtKind::Delay => {
                out.push(HirStmt::Delay);
                Ok(())
            }
        }
    }

    fn lower_decl(&mut self, decl: &ast::VarDecl, out: &mut Vec<HirStmt>) -> Result<(), FrontendError> {
        let bank = bank_from_pragmas(&decl.pragmas);
        let ii = decl.pragmas.iter().find_map(|p| match p {
            Pragma::Ii(n) => Some(*n),
            _ => None,
        });
        if ii.is_some() && !matches!(decl.ty, Type::Chan(_)) {
            return Err(err(
                "`@ii(N)` applies only to channel declarations",
                decl.span,
            ));
        }
        match (&decl.ty, &decl.init) {
            (Type::Chan(_), None) => {
                self.uses_channels = true;
                let id = self.add_local(&decl.name, decl.ty.clone(), false, MemBank::Auto, None);
                self.locals[id.0 as usize].ii = ii;
                self.bind(&decl.name, Binding::Local(id), decl.span)
            }
            (Type::Chan(_), Some(_)) => Err(err("channels cannot be initialized", decl.span)),
            (Type::Array(elem, n), init) => {
                if !elem.is_scalar() {
                    return Err(err("only 1-D arrays are supported", decl.span));
                }
                let rom = match init {
                    Some(Init::List(elems, span)) => {
                        if !decl.is_const {
                            return Err(err(
                                "array initializer lists are only allowed on `const` arrays (ROMs)",
                                *span,
                            ));
                        }
                        if elems.len() > *n {
                            return Err(err("too many initializers", *span));
                        }
                        let mut values = Vec::with_capacity(*n);
                        for e in elems {
                            let v = const_eval(e, &self.ctx.global_bindings)
                                .ok_or_else(|| err("ROM initializer must be constant", e.span))?;
                            values.push(canonical(v, elem));
                        }
                        values.resize(*n, 0);
                        Some(values)
                    }
                    Some(Init::Expr(e)) => {
                        return Err(err("arrays need a `{...}` initializer", e.span));
                    }
                    None => {
                        if decl.is_const {
                            return Err(err("const array needs an initializer", decl.span));
                        }
                        None
                    }
                };
                let id = self.add_local(&decl.name, decl.ty.clone(), false, bank, rom);
                self.bind(&decl.name, Binding::Local(id), decl.span)
            }
            (ty, init) if ty.is_scalar() || matches!(ty, Type::Ptr(_)) => {
                let id = self.add_local(&decl.name, ty.clone(), false, MemBank::Auto, None);
                // The initializer may reference shadowed outer bindings, so
                // lower it before installing the new binding... but C scopes
                // the name immediately. We follow C: bind first is wrong for
                // `int x = x;` — lower init first, then bind.
                if let Some(Init::Expr(e)) = init {
                    let ty = ty.clone();
                    let v = self.lower_expr(e, out)?;
                    let v = self.coerce(v, &ty, e.span)?;
                    out.push(HirStmt::Assign {
                        place: HirPlace::Local(id),
                        value: v,
                        span: decl.span,
                    });
                } else if let Some(Init::List(_, span)) = init {
                    return Err(err("scalar cannot take a list initializer", *span));
                }
                self.bind(&decl.name, Binding::Local(id), decl.span)
            }
            _ => Err(err(
                format!("cannot declare a local of type `{}`", decl.ty),
                decl.span,
            )),
        }
    }

    fn channel_local(&mut self, e: &Expr) -> Result<LocalId, FrontendError> {
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(Binding::Local(id)) if matches!(self.local_ty(id), Type::Chan(_)) => Ok(id),
                Some(_) => Err(err(format!("`{name}` is not a channel"), e.span)),
                None => Err(err(format!("undefined name `{name}`"), e.span)),
            },
            _ => Err(err("channel argument must be a channel name", e.span)),
        }
    }

    /// Loop conditions re-evaluate every iteration, so they must be free of
    /// side effects (no embedded assignment/call/recv).
    fn lower_loop_cond(&mut self, e: &Expr) -> Result<HirExpr, FrontendError> {
        let mut side = Vec::new();
        let cond = self.lower_cond(e, &mut side)?;
        if !side.is_empty() {
            return Err(err(
                "loop conditions must be side-effect free in CHL",
                e.span,
            ));
        }
        Ok(cond)
    }

    // ----- expressions -----

    /// Lowers an expression to a boolean condition.
    fn lower_cond(&mut self, e: &Expr, out: &mut Vec<HirStmt>) -> Result<HirExpr, FrontendError> {
        let v = self.lower_expr(e, out)?;
        self.coerce_bool(v, e.span)
    }

    fn coerce_bool(&mut self, e: HirExpr, span: Span) -> Result<HirExpr, FrontendError> {
        match &e.ty {
            Type::Bool => Ok(e),
            Type::Int(_) | Type::Ptr(_) => {
                let zero = HirExpr::konst(0, e.ty.clone());
                Ok(HirExpr {
                    ty: Type::Bool,
                    kind: HirExprKind::Binary(BinOp::Ne, Box::new(e), Box::new(zero)),
                })
            }
            other => Err(err(format!("`{other}` is not usable as a condition"), span)),
        }
    }

    /// Inserts a conversion of `e` to `target` if needed.
    fn coerce(&mut self, e: HirExpr, target: &Type, span: Span) -> Result<HirExpr, FrontendError> {
        if &e.ty == target {
            return Ok(e);
        }
        match (&e.ty, target) {
            (Type::Int(_) | Type::Bool, Type::Int(_) | Type::Bool) => {
                // Constant-fold casts of constants immediately.
                if let Some(v) = e.as_const() {
                    return Ok(HirExpr::konst(v, target.clone()));
                }
                Ok(HirExpr {
                    ty: target.clone(),
                    kind: HirExprKind::Cast(Box::new(e)),
                })
            }
            _ => Err(err(
                format!("cannot convert `{}` to `{}`", e.ty, target),
                span,
            )),
        }
    }

    /// Lowers an expression statement, allowing void calls.
    fn lower_expr_allow_void(
        &mut self,
        e: &Expr,
        out: &mut Vec<HirStmt>,
    ) -> Result<Option<HirExpr>, FrontendError> {
        // `x++;` with the value discarded needs no temporary — lower it as
        // the prefix form (this also keeps `for (...; ...; i++)` steps in
        // the canonical single-assignment shape the unroller recognizes).
        if let ExprKind::IncDec { inc, target, .. } = &e.kind {
            let as_prefix = Expr {
                kind: ExprKind::IncDec {
                    pre: true,
                    inc: *inc,
                    target: target.clone(),
                },
                span: e.span,
            };
            return Ok(Some(self.lower_expr(&as_prefix, out)?));
        }
        if let ExprKind::Call { callee, args } = &e.kind {
            let (func, _ret_ty) = self.resolve_call(callee, e.span)?;
            let args = self.lower_args(func, args, e.span, out)?;
            out.push(HirStmt::Call {
                dst: None,
                func,
                args,
                span: e.span,
            });
            return Ok(None);
        }
        Ok(Some(self.lower_expr(e, out)?))
    }

    fn resolve_call(&mut self, callee: &str, span: Span) -> Result<(FuncId, Type), FrontendError> {
        let id = *self
            .ctx
            .func_names
            .get(callee)
            .ok_or_else(|| err(format!("undefined function `{callee}`"), span))?;
        if !self.callees.contains(&id) {
            self.callees.push(id);
        }
        Ok((id, self.ctx.func_decls[id.0 as usize].ret_ty.clone()))
    }

    fn lower_args(
        &mut self,
        func: FuncId,
        args: &[Expr],
        span: Span,
        out: &mut Vec<HirStmt>,
    ) -> Result<Vec<HirArg>, FrontendError> {
        let params: Vec<(String, Type)> = self.ctx.func_decls[func.0 as usize]
            .params
            .iter()
            .map(|p| (p.name.clone(), p.ty.clone()))
            .collect();
        if params.len() != args.len() {
            return Err(err(
                format!(
                    "`{}` expects {} arguments, got {}",
                    self.ctx.func_decls[func.0 as usize].name,
                    params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut lowered = Vec::new();
        for (arg, (pname, pty)) in args.iter().zip(&params) {
            match pty {
                Type::Array(pelem, plen) => {
                    let place = self.lower_place(arg, out)?;
                    let aty = self.place_type(&place, arg.span)?;
                    match &aty {
                        Type::Array(aelem, alen) if **aelem == **pelem && alen == plen => {
                            lowered.push(HirArg::Array(place));
                        }
                        other => {
                            return Err(err(
                                format!(
                                    "argument for `{pname}` must be `{pty}`, got `{other}`"
                                ),
                                arg.span,
                            ));
                        }
                    }
                }
                Type::Ptr(ptarget) => {
                    // Array decay: an array argument becomes &arr[0].
                    if let Ok(place) = self.lower_place(arg, &mut Vec::new()) {
                        let aty = self.place_type(&place, arg.span)?;
                        if let Type::Array(aelem, _) = &aty {
                            if **aelem == **ptarget {
                                let place = self.lower_place(arg, out)?;
                                let zero = HirExpr::konst(0, Type::int());
                                lowered.push(HirArg::Value(HirExpr {
                                    ty: pty.clone(),
                                    kind: HirExprKind::AddrOf(Box::new(HirPlace::Index {
                                        base: Box::new(place),
                                        index: Box::new(zero),
                                    })),
                                }));
                                continue;
                            }
                        }
                    }
                    let v = self.lower_expr(arg, out)?;
                    if &v.ty != pty {
                        return Err(err(
                            format!("argument for `{pname}` must be `{pty}`, got `{}`", v.ty),
                            arg.span,
                        ));
                    }
                    lowered.push(HirArg::Value(v));
                }
                _ => {
                    let v = self.lower_expr(arg, out)?;
                    let v = self.coerce(v, pty, arg.span)?;
                    lowered.push(HirArg::Value(v));
                }
            }
        }
        Ok(lowered)
    }

    fn place_type(&self, place: &HirPlace, span: Span) -> Result<Type, FrontendError> {
        match place {
            HirPlace::Local(id) => Ok(self.local_ty(*id).clone()),
            HirPlace::Global(id) => Ok(self.ctx.globals[id.0 as usize].ty.clone()),
            HirPlace::Index { base, .. } => {
                let bty = self.place_type(base, span)?;
                bty.element().cloned().ok_or_else(|| {
                    err(format!("cannot index into `{bty}`"), span)
                })
            }
            HirPlace::Deref(e) => e
                .ty
                .element()
                .cloned()
                .ok_or_else(|| err("cannot dereference a non-pointer", span)),
        }
    }

    fn lower_place(&mut self, e: &Expr, out: &mut Vec<HirStmt>) -> Result<HirPlace, FrontendError> {
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(Binding::Local(id)) => Ok(HirPlace::Local(id)),
                Some(Binding::Global(id)) => Ok(HirPlace::Global(id)),
                Some(Binding::Const(..)) => {
                    Err(err(format!("`{name}` is a constant, not a place"), e.span))
                }
                None => Err(err(format!("undefined name `{name}`"), e.span)),
            },
            ExprKind::Index { base, index } => {
                // Array indexing when the base is a place of array type;
                // pointer arithmetic otherwise.
                let base_is_array_place = {
                    let mut probe = Vec::new();
                    match self.lower_place(base, &mut probe) {
                        Ok(p) => matches!(
                            self.place_type(&p, base.span),
                            Ok(Type::Array(..))
                        ),
                        Err(_) => false,
                    }
                };
                if base_is_array_place {
                    let place = self.lower_place(base, out)?;
                    let idx = self.lower_expr(index, out)?;
                    let idx = self.index_expr(idx, index.span)?;
                    Ok(HirPlace::Index {
                        base: Box::new(place),
                        index: Box::new(idx),
                    })
                } else {
                    // p[i] == *(p + i)
                    let ptr = self.lower_expr(base, out)?;
                    if !matches!(ptr.ty, Type::Ptr(_)) {
                        return Err(err(
                            format!("cannot index into `{}`", ptr.ty),
                            e.span,
                        ));
                    }
                    let idx = self.lower_expr(index, out)?;
                    let idx = self.index_expr(idx, index.span)?;
                    let pty = ptr.ty.clone();
                    let sum = HirExpr {
                        ty: pty,
                        kind: HirExprKind::Binary(BinOp::Add, Box::new(ptr), Box::new(idx)),
                    };
                    Ok(HirPlace::Deref(Box::new(sum)))
                }
            }
            ExprKind::Deref(inner) => {
                let ptr = self.lower_expr(inner, out)?;
                if !matches!(ptr.ty, Type::Ptr(_)) {
                    return Err(err(
                        format!("cannot dereference `{}`", ptr.ty),
                        e.span,
                    ));
                }
                Ok(HirPlace::Deref(Box::new(ptr)))
            }
            _ => Err(err("expression is not assignable", e.span)),
        }
    }

    fn index_expr(&mut self, idx: HirExpr, span: Span) -> Result<HirExpr, FrontendError> {
        match idx.ty {
            Type::Int(_) => Ok(idx),
            Type::Bool => self.coerce(idx, &Type::int(), span),
            ref other => Err(err(format!("array index must be an integer, got `{other}`"), span)),
        }
    }

    fn lower_expr(&mut self, e: &Expr, out: &mut Vec<HirStmt>) -> Result<HirExpr, FrontendError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let ty = if *v <= i32::MAX as u64 {
                    Type::int()
                } else {
                    Type::sint(64)
                };
                Ok(HirExpr::konst(*v as i64, ty))
            }
            ExprKind::BoolLit(b) => Ok(HirExpr::konst(*b as i64, Type::Bool)),
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(Binding::Const(v, ty)) => Ok(HirExpr::konst(v, ty)),
                Some(Binding::Local(id)) => {
                    let ty = self.local_ty(id).clone();
                    if matches!(ty, Type::Chan(_)) {
                        return Err(err(
                            format!("channel `{name}` can only be used with send/recv"),
                            e.span,
                        ));
                    }
                    Ok(HirExpr {
                        ty,
                        kind: HirExprKind::Load(Box::new(HirPlace::Local(id))),
                    })
                }
                Some(Binding::Global(id)) => {
                    let ty = self.ctx.globals[id.0 as usize].ty.clone();
                    Ok(HirExpr {
                        ty,
                        kind: HirExprKind::Load(Box::new(HirPlace::Global(id))),
                    })
                }
                None => Err(err(format!("undefined name `{name}`"), e.span)),
            },
            ExprKind::Unary(op, inner) => {
                let v = self.lower_expr(inner, out)?;
                match op {
                    UnOp::LogNot => {
                        let b = self.coerce_bool(v, inner.span)?;
                        Ok(HirExpr {
                            ty: Type::Bool,
                            kind: HirExprKind::Unary(UnOp::LogNot, Box::new(b)),
                        })
                    }
                    UnOp::Neg | UnOp::Not => {
                        let it = Type::promote(&v.ty).ok_or_else(|| {
                            err(format!("cannot apply `{op}` to `{}`", v.ty), e.span)
                        })?;
                        let ty = Type::Int(it);
                        let v = self.coerce(v, &ty, inner.span)?;
                        Ok(HirExpr {
                            ty,
                            kind: HirExprKind::Unary(*op, Box::new(v)),
                        })
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                if op.is_logical() {
                    // Both sides evaluate (see module docs); select keeps
                    // the boolean result.
                    let a = self.lower_cond(l, out)?;
                    let b = self.lower_cond(r, out)?;
                    let (t, f) = match op {
                        BinOp::LogAnd => (b, HirExpr::konst(0, Type::Bool)),
                        BinOp::LogOr => (HirExpr::konst(1, Type::Bool), b),
                        _ => unreachable!(),
                    };
                    return Ok(HirExpr {
                        ty: Type::Bool,
                        kind: HirExprKind::Select(Box::new(a), Box::new(t), Box::new(f)),
                    });
                }
                let a = self.lower_expr(l, out)?;
                let b = self.lower_expr(r, out)?;
                self.lower_binary(*op, a, b, e.span)
            }
            ExprKind::Assign { op, target, value } => {
                let place = self.lower_place(target, out)?;
                let pty = self.place_type(&place, target.span)?;
                if !pty.is_scalar() && !matches!(pty, Type::Ptr(_)) {
                    return Err(err(
                        format!("cannot assign to a value of type `{pty}`"),
                        target.span,
                    ));
                }
                if matches!(place, HirPlace::Global(_)) {
                    return Err(err("cannot assign to a constant", target.span));
                }
                if let HirPlace::Index { base, .. } = &place {
                    if matches!(**base, HirPlace::Global(_)) {
                        return Err(err("cannot assign to a constant ROM", target.span));
                    }
                }
                let rhs = self.lower_expr(value, out)?;
                let rhs = match op {
                    None => self.coerce(rhs, &pty, value.span)?,
                    Some(binop) => {
                        let cur = HirExpr {
                            ty: pty.clone(),
                            kind: HirExprKind::Load(Box::new(place.clone())),
                        };
                        let combined = self.lower_binary(*binop, cur, rhs, e.span)?;
                        self.coerce(combined, &pty, value.span)?
                    }
                };
                out.push(HirStmt::Assign {
                    place: place.clone(),
                    value: rhs,
                    span: e.span,
                });
                Ok(HirExpr {
                    ty: pty,
                    kind: HirExprKind::Load(Box::new(place)),
                })
            }
            ExprKind::Ternary { cond, then, els } => {
                let c = self.lower_cond(cond, out)?;
                let t = self.lower_expr(then, out)?;
                let f = self.lower_expr(els, out)?;
                let ty = if t.ty == f.ty {
                    t.ty.clone()
                } else {
                    let it = Type::common_int(&t.ty, &f.ty).ok_or_else(|| {
                        err(
                            format!("incompatible ternary arms `{}` and `{}`", t.ty, f.ty),
                            e.span,
                        )
                    })?;
                    Type::Int(it)
                };
                let t = self.coerce(t, &ty, then.span)?;
                let f = self.coerce(f, &ty, els.span)?;
                Ok(HirExpr {
                    ty,
                    kind: HirExprKind::Select(Box::new(c), Box::new(t), Box::new(f)),
                })
            }
            ExprKind::Call { callee, args } => {
                let (func, ret_ty) = self.resolve_call(callee, e.span)?;
                if ret_ty == Type::Void {
                    return Err(err(
                        format!("void function `{callee}` used as a value"),
                        e.span,
                    ));
                }
                let args = self.lower_args(func, args, e.span, out)?;
                let tmp = self.fresh_temp(ret_ty.clone());
                out.push(HirStmt::Call {
                    dst: Some(HirPlace::Local(tmp)),
                    func,
                    args,
                    span: e.span,
                });
                Ok(HirExpr {
                    ty: ret_ty,
                    kind: HirExprKind::Load(Box::new(HirPlace::Local(tmp))),
                })
            }
            ExprKind::Index { .. } | ExprKind::Deref(_) => {
                let place = self.lower_place(e, out)?;
                let ty = self.place_type(&place, e.span)?;
                Ok(HirExpr {
                    ty,
                    kind: HirExprKind::Load(Box::new(place)),
                })
            }
            ExprKind::AddrOf(inner) => {
                let place = self.lower_place(inner, out)?;
                if place_root_is_global(&place) {
                    return Err(err("cannot take the address of a constant ROM", e.span));
                }
                let ty = self.place_type(&place, inner.span)?;
                if !ty.is_scalar() && !matches!(ty, Type::Ptr(_)) {
                    return Err(err(
                        format!("cannot take the address of a `{ty}`"),
                        e.span,
                    ));
                }
                Ok(HirExpr {
                    ty: Type::Ptr(Box::new(ty)),
                    kind: HirExprKind::AddrOf(Box::new(place)),
                })
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.lower_expr(expr, out)?;
                self.coerce(v, ty, e.span)
            }
            ExprKind::Recv(chan) => {
                let chan_id = self.channel_local(chan)?;
                let elem_ty = match self.local_ty(chan_id) {
                    Type::Chan(elem) => (**elem).clone(),
                    _ => unreachable!(),
                };
                self.uses_channels = true;
                let tmp = self.fresh_temp(elem_ty.clone());
                out.push(HirStmt::Recv {
                    dst: HirPlace::Local(tmp),
                    chan: chan_id,
                    span: e.span,
                });
                Ok(HirExpr {
                    ty: elem_ty,
                    kind: HirExprKind::Load(Box::new(HirPlace::Local(tmp))),
                })
            }
            ExprKind::IncDec { pre, inc, target } => {
                let place = self.lower_place(target, out)?;
                let pty = self.place_type(&place, target.span)?;
                if !pty.is_int() {
                    return Err(err("`++`/`--` require an integer place", e.span));
                }
                let cur = HirExpr {
                    ty: pty.clone(),
                    kind: HirExprKind::Load(Box::new(place.clone())),
                };
                let result = if *pre {
                    None
                } else {
                    let tmp = self.fresh_temp(pty.clone());
                    out.push(HirStmt::Assign {
                        place: HirPlace::Local(tmp),
                        value: cur.clone(),
                        span: e.span,
                    });
                    Some(tmp)
                };
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                let one = HirExpr::konst(1, pty.clone());
                let updated = self.lower_binary(op, cur, one, e.span)?;
                let updated = self.coerce(updated, &pty, e.span)?;
                out.push(HirStmt::Assign {
                    place: place.clone(),
                    value: updated,
                    span: e.span,
                });
                let load_of = match result {
                    Some(tmp) => HirPlace::Local(tmp),
                    None => place,
                };
                Ok(HirExpr {
                    ty: pty,
                    kind: HirExprKind::Load(Box::new(load_of)),
                })
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        a: HirExpr,
        b: HirExpr,
        span: Span,
    ) -> Result<HirExpr, FrontendError> {
        // Pointer arithmetic and comparison.
        if matches!(a.ty, Type::Ptr(_)) || matches!(b.ty, Type::Ptr(_)) {
            return self.lower_ptr_binary(op, a, b, span);
        }
        match op {
            BinOp::Shl | BinOp::Shr => {
                let it = Type::promote(&a.ty)
                    .ok_or_else(|| err(format!("cannot shift `{}`", a.ty), span))?;
                let ty = Type::Int(it);
                let a = self.coerce(a, &ty, span)?;
                let bit = Type::promote(&b.ty)
                    .ok_or_else(|| err(format!("shift amount `{}` is not an integer", b.ty), span))?;
                let b = self.coerce(b, &Type::Int(bit), span)?;
                Ok(HirExpr {
                    ty,
                    kind: HirExprKind::Binary(op, Box::new(a), Box::new(b)),
                })
            }
            _ => {
                let it = Type::common_int(&a.ty, &b.ty).ok_or_else(|| {
                    err(
                        format!("cannot apply `{op}` to `{}` and `{}`", a.ty, b.ty),
                        span,
                    )
                })?;
                let common = Type::Int(it);
                let a = self.coerce(a, &common, span)?;
                let b = self.coerce(b, &common, span)?;
                let ty = if op.is_comparison() { Type::Bool } else { common };
                Ok(HirExpr {
                    ty,
                    kind: HirExprKind::Binary(op, Box::new(a), Box::new(b)),
                })
            }
        }
    }

    fn lower_ptr_binary(
        &mut self,
        op: BinOp,
        a: HirExpr,
        b: HirExpr,
        span: Span,
    ) -> Result<HirExpr, FrontendError> {
        match (op, &a.ty, &b.ty) {
            (BinOp::Add, Type::Ptr(_), Type::Int(_) | Type::Bool)
            | (BinOp::Sub, Type::Ptr(_), Type::Int(_) | Type::Bool) => {
                let ty = a.ty.clone();
                Ok(HirExpr {
                    ty,
                    kind: HirExprKind::Binary(op, Box::new(a), Box::new(b)),
                })
            }
            (BinOp::Add, Type::Int(_) | Type::Bool, Type::Ptr(_)) => {
                let ty = b.ty.clone();
                Ok(HirExpr {
                    ty,
                    kind: HirExprKind::Binary(BinOp::Add, Box::new(b), Box::new(a)),
                })
            }
            (BinOp::Eq | BinOp::Ne, Type::Ptr(x), Type::Ptr(y)) if x == y => Ok(HirExpr {
                ty: Type::Bool,
                kind: HirExprKind::Binary(op, Box::new(a), Box::new(b)),
            }),
            _ => Err(err(
                format!("invalid pointer operation `{}` {op} `{}`", a.ty, b.ty),
                span,
            )),
        }
    }
}

/// True when the place ultimately names a global ROM.
fn place_root_is_global(place: &HirPlace) -> bool {
    match place {
        HirPlace::Global(_) => true,
        HirPlace::Index { base, .. } => place_root_is_global(base),
        _ => false,
    }
}

/// Finds every call cycle in the program, as the exact cycle members in
/// call order (`f -> g -> f` reports `[f, g]`, a self-call reports
/// `[f]`). Each strongly connected component of the call graph yields
/// one representative cycle; cycles are reported in ascending order of
/// their smallest member's [`FuncId`].
pub fn recursion_cycles(prog: &HirProgram) -> Vec<Vec<FuncId>> {
    // Iterative Tarjan SCC over the callee lists.
    let n = prog.funcs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // (node, next-callee position)
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let callees = &prog.funcs[v].callees;
            if *pos < callees.len() {
                let w = callees[*pos].0 as usize;
                *pos += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1
                        || prog.funcs[comp[0]].callees.contains(&FuncId(comp[0] as u32));
                    if cyclic {
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
                work.pop();
                if let Some(&mut (u, _)) = work.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    sccs.sort_by_key(|c| c[0]);
    // Order each SCC as an actual call chain starting from its smallest
    // member, following in-SCC callee edges.
    sccs.into_iter()
        .map(|comp| {
            let mut order = vec![FuncId(comp[0] as u32)];
            let mut seen = vec![comp[0]];
            loop {
                let cur = order.last().expect("nonempty").0 as usize;
                let next = prog.funcs[cur]
                    .callees
                    .iter()
                    .find(|c| comp.contains(&(c.0 as usize)) && !seen.contains(&(c.0 as usize)));
                match next {
                    Some(&c) => {
                        seen.push(c.0 as usize);
                        order.push(c);
                    }
                    None => break,
                }
            }
            // Members not on the greedy chain (e.g. diamond SCCs) still
            // belong to the cycle report; append them in id order.
            for &m in &comp {
                if !seen.contains(&m) {
                    order.push(FuncId(m as u32));
                }
            }
            order
        })
        .collect()
}

/// The source span of the first call from `caller` to `callee`, for
/// anchoring recursion diagnostics at the offending call site.
fn first_call_span(prog: &HirProgram, caller: FuncId, callee: FuncId) -> Option<Span> {
    fn scan(block: &HirBlock, callee: FuncId) -> Option<Span> {
        for s in &block.stmts {
            match s {
                HirStmt::Call { func, span, .. } if *func == callee => return Some(*span),
                HirStmt::If { then, els, .. } => {
                    if let Some(sp) = scan(then, callee).or_else(|| scan(els, callee)) {
                        return Some(sp);
                    }
                }
                HirStmt::While { body, .. }
                | HirStmt::DoWhile { body, .. }
                | HirStmt::Block(body)
                | HirStmt::Constraint { body, .. } => {
                    if let Some(sp) = scan(body, callee) {
                        return Some(sp);
                    }
                }
                HirStmt::For {
                    init, step, body, ..
                } => {
                    if let Some(sp) = scan(init, callee)
                        .or_else(|| scan(step, callee))
                        .or_else(|| scan(body, callee))
                    {
                        return Some(sp);
                    }
                }
                HirStmt::Par(arms) => {
                    for arm in arms {
                        if let Some(sp) = scan(arm, callee) {
                            return Some(sp);
                        }
                    }
                }
                _ => {}
            }
        }
        None
    }
    scan(&prog.func(caller).body, callee)
}

/// Rejects direct or mutual recursion (hardware has no stack). The
/// diagnostic names exactly the functions on the cycle — no incidental
/// call-chain prefix — and is anchored at the recursive call site.
fn check_no_recursion(prog: &HirProgram) -> Result<(), FrontendError> {
    let cycles = recursion_cycles(prog);
    let Some(cycle) = cycles.first() else {
        return Ok(());
    };
    let mut names: Vec<String> = cycle.iter().map(|&f| prog.func(f).name.clone()).collect();
    names.push(names[0].clone()); // close the loop: f -> g -> f
    let back_to = cycle[0];
    let last = *cycle.last().expect("cycle is nonempty");
    let span = first_call_span(prog, last, back_to)
        .or_else(|| first_call_span(prog, cycle[0], cycle[1 % cycle.len()]))
        .unwrap_or_else(Span::dummy);
    Err(err(
        format!(
            "recursion is not synthesizable (cycle: {}); `chls rewrite` can repair bounded recursion",
            names.join(" -> ")
        ),
        span,
    ))
}

/// Convenience: parse and analyze in one step.
///
/// # Errors
///
/// Returns lexical, syntactic, or semantic diagnostics.
pub fn compile_to_hir(src: &str) -> Result<HirProgram, FrontendError> {
    let ast = crate::parser::parse(src).map_err(FrontendError::single)?;
    analyze(&ast)
}

/// Parse and analyze without the recursion rejection (see
/// [`analyze_relaxed`]).
///
/// # Errors
///
/// Returns lexical, syntactic, or semantic diagnostics.
pub fn compile_to_hir_relaxed(src: &str) -> Result<HirProgram, FrontendError> {
    let ast = crate::parser::parse(src).map_err(FrontendError::single)?;
    analyze_relaxed(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hir_ok(src: &str) -> HirProgram {
        match compile_to_hir(src) {
            Ok(p) => p,
            Err(e) => panic!("sema failed: {}", e.render(src)),
        }
    }

    fn hir_err(src: &str) -> String {
        compile_to_hir(src)
            .expect_err("expected sema error")
            .first()
            .message
            .clone()
    }

    #[test]
    fn lowers_simple_function() {
        let p = hir_ok("int add(int a, int b) { return a + b; }");
        let (_, f) = p.func_by_name("add").unwrap();
        assert_eq!(f.num_params, 2);
        assert_eq!(f.ret_ty, Type::int());
        assert!(matches!(f.body.stmts[0], HirStmt::Return(Some(_))));
    }

    #[test]
    fn widening_inserts_cast() {
        let p = hir_ok("int f(uint<8> x) { return x + 1000; }");
        let (_, f) = p.func_by_name("f").unwrap();
        let HirStmt::Return(Some(e)) = &f.body.stmts[0] else {
            panic!("expected return");
        };
        // uint<8> + int(32) -> common uint<32>, then cast to int for return.
        assert_eq!(e.ty, Type::int());
    }

    #[test]
    fn comparisons_yield_bool() {
        let p = hir_ok("bool f(int a, int b) { return a < b; }");
        let (_, f) = p.func_by_name("f").unwrap();
        let HirStmt::Return(Some(e)) = &f.body.stmts[0] else {
            panic!()
        };
        assert_eq!(e.ty, Type::Bool);
    }

    #[test]
    fn shift_keeps_lhs_type() {
        let p = hir_ok("uint<8> f(uint<8> x) { return x << 2; }");
        let (_, f) = p.func_by_name("f").unwrap();
        let HirStmt::Return(Some(e)) = &f.body.stmts[0] else {
            panic!()
        };
        assert_eq!(e.ty, Type::uint(8));
    }

    #[test]
    fn call_in_expression_is_hoisted() {
        let p = hir_ok(
            "int g(int x) { return x * 2; }
             int f(int a) { return g(a) + g(a + 1); }",
        );
        let (_, f) = p.func_by_name("f").unwrap();
        let calls = f
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s, HirStmt::Call { .. }))
            .count();
        assert_eq!(calls, 2);
        assert!(matches!(f.body.stmts.last(), Some(HirStmt::Return(_))));
    }

    #[test]
    fn incdec_desugars() {
        let p = hir_ok("int f() { int x = 0; int y = x++; int z = ++x; return y + z; }");
        let (_, f) = p.func_by_name("f").unwrap();
        // Every statement is now a plain assignment or return.
        for s in &f.body.stmts {
            assert!(
                matches!(s, HirStmt::Assign { .. } | HirStmt::Return(_)),
                "unexpected stmt {s:?}"
            );
        }
    }

    #[test]
    fn recursion_is_rejected() {
        let msg = hir_err("int f(int n) { return n == 0 ? 1 : n * f(n - 1); }");
        assert!(msg.contains("recursion"), "{msg}");
    }

    #[test]
    fn mutual_recursion_is_rejected() {
        let msg = hir_err(
            "int g(int n);
             int f(int n) { return g(n); }
             int g(int n) { return f(n); }",
        );
        // The forward declaration merges with the later definition, so
        // the diagnostic names the actual cycle, not a missing body.
        assert!(msg.contains("recursion"), "{msg}");
        assert!(msg.contains("f -> g -> f") || msg.contains("g -> f -> g"), "{msg}");
    }

    #[test]
    fn forward_declaration_merges_with_definition() {
        let p = hir_ok(
            "int helper(int n);
             int main(int x) { return helper(x); }
             int helper(int n) { return n + 1; }",
        );
        assert_eq!(p.funcs.len(), 2);
    }

    #[test]
    fn forward_declaration_without_definition_is_rejected() {
        let msg = hir_err("int ghost(int n); int main(int x) { return x; }");
        assert!(msg.contains("no body"), "{msg}");
    }

    #[test]
    fn forward_declaration_signature_mismatch_is_rejected() {
        let msg = hir_err(
            "int f(int n);
             int f(int n, int m) { return n + m; }
             int main() { return 0; }",
        );
        assert!(msg.contains("does not match"), "{msg}");
    }

    #[test]
    fn recursion_diagnostic_is_span_anchored() {
        let e = compile_to_hir("int f(int n) { return n == 0 ? 1 : n * f(n - 1); }")
            .expect_err("expected recursion error");
        let d = e.diagnostics.first().expect("one diagnostic");
        assert!(!d.span.is_dummy(), "cycle diagnostic should anchor at the call site");
    }

    #[test]
    fn relaxed_analysis_accepts_recursion() {
        let p = crate::sema::compile_to_hir_relaxed(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }",
        )
        .expect("relaxed path admits recursion");
        let cycles = recursion_cycles(&p);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
    }

    #[test]
    fn mutable_global_rejected() {
        let msg = hir_err("int counter = 0; int f() { return counter; }");
        assert!(msg.contains("const"), "{msg}");
    }

    #[test]
    fn const_global_scalar_is_folded() {
        let p = hir_ok("const int N = 7; int f() { return N; }");
        let (_, f) = p.func_by_name("f").unwrap();
        let HirStmt::Return(Some(e)) = &f.body.stmts[0] else {
            panic!()
        };
        assert_eq!(e.as_const(), Some(7));
    }

    #[test]
    fn const_global_array_becomes_rom() {
        let p = hir_ok("const int tab[4] = {1, 2, 3}; int f() { return tab[0]; }");
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].values, vec![1, 2, 3, 0]);
    }

    #[test]
    fn rom_write_rejected() {
        let msg = hir_err("const int tab[2] = {1, 2}; void f() { tab[0] = 3; }");
        assert!(msg.contains("constant"), "{msg}");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let msg = hir_err("void f() { break; }");
        assert!(msg.contains("break"));
    }

    #[test]
    fn break_cannot_cross_par() {
        let msg = hir_err("void f() { while (true) { par { break; } } }");
        assert!(msg.contains("break"));
    }

    #[test]
    fn par_and_channels_flagged() {
        let p = hir_ok(
            "void f() {
                chan<int> c;
                int got;
                par {
                    send(c, 1);
                    got = recv(c);
                }
            }",
        );
        let (_, f) = p.func_by_name("f").unwrap();
        assert!(f.uses_par);
        assert!(f.uses_channels);
    }

    #[test]
    fn channel_in_arithmetic_rejected() {
        let msg = hir_err("void f() { chan<int> c; int x = c + 1; }");
        assert!(msg.contains("channel"));
    }

    #[test]
    fn send_value_coerced_to_elem_type() {
        hir_ok("void f() { chan<uint<8>> c; par { send(c, 300); { uint<8> v = recv(c); } } }");
    }

    #[test]
    fn array_param_checked_exactly() {
        let msg = hir_err(
            "int g(int a[4]) { return a[0]; }
             int f() { int b[8]; return g(b); }",
        );
        assert!(msg.contains("argument"));
    }

    #[test]
    fn array_decays_to_pointer_param() {
        hir_ok(
            "int g(int *p) { return p[0]; }
             int f() { int b[8]; b[0] = 5; return g(b); }",
        );
    }

    #[test]
    fn pointer_arith_and_deref() {
        let p = hir_ok(
            "int f() {
                int a[4];
                a[0] = 1; a[1] = 2;
                int *p = &a[0];
                p = p + 1;
                return *p;
            }",
        );
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn addr_of_rom_rejected() {
        let msg = hir_err("const int t[2] = {1,2}; void f() { int *p = &t[0]; }");
        assert!(msg.contains("ROM") || msg.contains("constant"));
    }

    #[test]
    fn loop_cond_with_side_effects_rejected() {
        let msg = hir_err("void f() { int x = 0; while ((x = x + 1) < 10) { } }");
        assert!(msg.contains("side-effect"));
    }

    #[test]
    fn unroll_pragma_reaches_hir() {
        let p = hir_ok(
            "int f() {
                int s = 0;
                #pragma unroll 2
                for (int i = 0; i < 8; i++) s += i;
                return s;
            }",
        );
        let (_, f) = p.func_by_name("f").unwrap();
        let has_unrolled_for = f.body.stmts.iter().any(|s| {
            matches!(s, HirStmt::For { unroll: Some(2), .. })
        });
        assert!(has_unrolled_for);
    }

    #[test]
    fn constraint_pragma_wraps_block() {
        let p = hir_ok(
            "int f(int a, int b) {
                int x = 0;
                #pragma constraint 2
                { x = a + b; x = x * 2; }
                return x;
            }",
        );
        let (_, f) = p.func_by_name("f").unwrap();
        assert!(f
            .body
            .stmts
            .iter()
            .any(|s| matches!(s, HirStmt::Constraint { cycles: 2, .. })));
    }

    #[test]
    fn clock_period_pragma_recorded() {
        let p = hir_ok("#pragma clock_period 8000\nint f() { return 0; }");
        assert_eq!(p.clock_period_ps, Some(8000));
    }

    #[test]
    fn bank_pragma_on_local_array() {
        let p = hir_ok(
            "int f() {
                int a[8];
                a[0] = 1;
                return a[0];
            }",
        );
        let (_, f) = p.func_by_name("f").unwrap();
        let arr = f.locals.iter().find(|l| l.name == "a").unwrap();
        assert_eq!(arr.bank, MemBank::Auto);
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let p = hir_ok(
            "int f() {
                int x = 1;
                { int x = 2; x = x + 1; }
                return x;
            }",
        );
        let (_, f) = p.func_by_name("f").unwrap();
        // Two distinct locals named x.
        assert_eq!(f.locals.iter().filter(|l| l.name == "x").count(), 2);
    }

    #[test]
    fn duplicate_in_same_scope_rejected() {
        let msg = hir_err("int f() { int x = 1; int x = 2; return x; }");
        assert!(msg.contains("already defined"));
    }

    #[test]
    fn undefined_name_rejected() {
        let msg = hir_err("int f() { return nope; }");
        assert!(msg.contains("undefined"));
    }

    #[test]
    fn void_function_as_value_rejected() {
        let msg = hir_err(
            "void g() { }
             int f() { return g(); }",
        );
        assert!(msg.contains("void"));
    }

    #[test]
    fn logical_ops_desugar_to_select() {
        let p = hir_ok("bool f(int a, int b) { return a > 0 && b > 0; }");
        let (_, f) = p.func_by_name("f").unwrap();
        let HirStmt::Return(Some(e)) = &f.body.stmts[0] else {
            panic!()
        };
        assert!(matches!(e.kind, HirExprKind::Select(..)));
    }

    #[test]
    fn non_const_array_init_list_rejected() {
        let msg = hir_err("int f() { int a[2] = {1, 2}; return a[0]; }");
        assert!(msg.contains("const"), "{msg}");
    }
}
