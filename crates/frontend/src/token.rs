//! Token definitions for the CHL lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token: kind plus the source span it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Source range of the token text.
    pub span: Span,
}

/// The set of CHL token kinds.
///
/// CHL is a C subset plus hardware extensions, so the keyword list contains
/// both the familiar C keywords and the extension keywords (`par`, `chan`,
/// `send`, `recv`, `delay`, `uint`/`int<N>` introducers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (decimal, hex `0x`, octal `0`, binary `0b`),
    /// already parsed to its value.
    IntLit(u64),
    /// Character literal such as `'a'`, stored as its value.
    CharLit(u8),
    /// An identifier.
    Ident(String),

    // --- C keywords ---
    KwVoid,
    KwBool,
    KwChar,
    KwShort,
    KwInt,
    KwLong,
    KwUnsigned,
    KwSigned,
    KwConst,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwTrue,
    KwFalse,

    // --- hardware extension keywords ---
    /// `par { ... } { ... }` parallel composition (Handel-C style).
    KwPar,
    /// `chan<T>` channel type introducer.
    KwChan,
    /// `send(ch, v);` rendezvous send.
    KwSend,
    /// `recv(ch)` rendezvous receive expression.
    KwRecv,
    /// `delay;` one-cycle delay statement (Handel-C).
    KwDelay,
    /// `uint<N>` bit-precise unsigned introducer.
    KwUint,
    /// `sint<N>` bit-precise signed introducer (`int<N>` also accepted).
    KwSint,

    // --- punctuation and operators ---
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    /// `@` — introduces a declaration-suffix attribute such as `@ii(n)`.
    At,

    /// A `#pragma` line, captured verbatim (without the `#pragma` prefix).
    Pragma(String),

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident`, if it is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "void" => TokenKind::KwVoid,
            "bool" | "_Bool" => TokenKind::KwBool,
            "char" => TokenKind::KwChar,
            "short" => TokenKind::KwShort,
            "int" => TokenKind::KwInt,
            "long" => TokenKind::KwLong,
            "unsigned" => TokenKind::KwUnsigned,
            "signed" => TokenKind::KwSigned,
            "const" => TokenKind::KwConst,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "do" => TokenKind::KwDo,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "par" => TokenKind::KwPar,
            "chan" => TokenKind::KwChan,
            "send" => TokenKind::KwSend,
            "recv" => TokenKind::KwRecv,
            "delay" => TokenKind::KwDelay,
            "uint" => TokenKind::KwUint,
            "sint" => TokenKind::KwSint,
            _ => return None,
        })
    }

    /// Short human-readable name used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::CharLit(c) => format!("character literal `{}`", *c as char),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Pragma(_) => "#pragma".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    /// Literal spelling for fixed tokens (empty for variable tokens).
    fn text(&self) -> &'static str {
        match self {
            TokenKind::KwVoid => "void",
            TokenKind::KwBool => "bool",
            TokenKind::KwChar => "char",
            TokenKind::KwShort => "short",
            TokenKind::KwInt => "int",
            TokenKind::KwLong => "long",
            TokenKind::KwUnsigned => "unsigned",
            TokenKind::KwSigned => "signed",
            TokenKind::KwConst => "const",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwWhile => "while",
            TokenKind::KwDo => "do",
            TokenKind::KwFor => "for",
            TokenKind::KwReturn => "return",
            TokenKind::KwBreak => "break",
            TokenKind::KwContinue => "continue",
            TokenKind::KwTrue => "true",
            TokenKind::KwFalse => "false",
            TokenKind::KwPar => "par",
            TokenKind::KwChan => "chan",
            TokenKind::KwSend => "send",
            TokenKind::KwRecv => "recv",
            TokenKind::KwDelay => "delay",
            TokenKind::KwUint => "uint",
            TokenKind::KwSint => "sint",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Question => "?",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Bang => "!",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::AmpAmp => "&&",
            TokenKind::PipePipe => "||",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::StarAssign => "*=",
            TokenKind::SlashAssign => "/=",
            TokenKind::PercentAssign => "%=",
            TokenKind::AmpAssign => "&=",
            TokenKind::PipeAssign => "|=",
            TokenKind::CaretAssign => "^=",
            TokenKind::ShlAssign => "<<=",
            TokenKind::ShrAssign => ">>=",
            TokenKind::PlusPlus => "++",
            TokenKind::MinusMinus => "--",
            TokenKind::At => "@",
            _ => "",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("par"), Some(TokenKind::KwPar));
        assert_eq!(TokenKind::keyword("uint"), Some(TokenKind::KwUint));
        assert_eq!(TokenKind::keyword("widget"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::IntLit(42).describe(), "integer literal `42`");
        assert_eq!(TokenKind::Shl.describe(), "`<<`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
