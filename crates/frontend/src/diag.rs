//! Diagnostics: errors produced by the lexer, parser, and semantic analysis.

use crate::span::{line_col, Span};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A hard error; compilation cannot continue past this phase.
    Error,
    /// A warning; compilation continues.
    Warning,
}

/// A secondary location attached to a diagnostic ("first write here …").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Where in the source the note points.
    pub span: Span,
}

/// A single diagnostic message anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the diagnostic is.
    pub severity: Severity,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Where in the source the problem occurred.
    pub span: Span,
    /// Secondary locations elaborating the diagnostic (may be empty).
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary-span note; builder style.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push(Note {
            message: message.into(),
            span,
        });
        self
    }

    /// Renders the diagnostic with line/column info resolved against `src`.
    ///
    /// Without notes the output is a single line, byte-identical to the
    /// historical format; each note adds an indented `note:` line.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = format!("{sev}: {} at {line}:{col}", self.message);
        for note in &self.notes {
            let (nl, nc) = line_col(src, note.span.start);
            out.push_str(&format!("\n  note: {} at {nl}:{nc}", note.message));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}: {} ({})", self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

/// Error type returned by frontend entry points: one or more diagnostics,
/// at least one of which is an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// All diagnostics collected before the frontend gave up.
    pub diagnostics: Vec<Diagnostic>,
}

impl FrontendError {
    /// Wraps a single diagnostic.
    pub fn single(diag: Diagnostic) -> Self {
        FrontendError {
            diagnostics: vec![diag],
        }
    }

    /// The first error-severity diagnostic.
    pub fn first(&self) -> &Diagnostic {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .unwrap_or(&self.diagnostics[0])
    }

    /// Renders all diagnostics against the given source text.
    pub fn render(&self, src: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FrontendError {}

impl From<Diagnostic> for FrontendError {
    fn from(diag: Diagnostic) -> Self {
        FrontendError::single(diag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_line_col() {
        let src = "int x;\nint y@;\n";
        let d = Diagnostic::error("unexpected character", Span::new(12, 13));
        assert_eq!(d.render(src), "error: unexpected character at 2:6");
    }

    #[test]
    fn render_appends_notes() {
        let src = "int x;\nint y@;\n";
        let d = Diagnostic::error("unexpected character", Span::new(12, 13))
            .with_note("declared here", Span::new(4, 5));
        assert_eq!(
            d.render(src),
            "error: unexpected character at 2:6\n  note: declared here at 1:5"
        );
    }

    #[test]
    fn first_prefers_errors() {
        let err = FrontendError {
            diagnostics: vec![
                Diagnostic::warning("w", Span::dummy()),
                Diagnostic::error("e", Span::dummy()),
            ],
        };
        assert_eq!(err.first().message, "e");
    }

    #[test]
    fn display_joins_diagnostics() {
        let err = FrontendError {
            diagnostics: vec![
                Diagnostic::error("a", Span::new(0, 1)),
                Diagnostic::error("b", Span::new(1, 2)),
            ],
        };
        let s = err.to_string();
        assert!(s.contains("a") && s.contains("b"));
    }
}
