//! Source positions and spans.
//!
//! Every token, AST node, and diagnostic carries a [`Span`] identifying the
//! half-open byte range it covers in the original source text.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the span covers no characters.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// True for the synthesized zero-width span at offset 0.
    pub fn is_dummy(self) -> bool {
        self == Span::dummy()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Computes the 1-based line and column of a byte offset within `src`.
pub fn line_col(src: &str, offset: u32) -> (u32, u32) {
    let offset = (offset as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in src.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 6).len(), 4);
        assert!(Span::new(5, 5).is_empty());
        assert!(!Span::new(5, 6).is_empty());
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn line_col_past_end_clamps() {
        let src = "x";
        assert_eq!(line_col(src, 100), (1, 2));
    }
}
