//! The CHL type system.
//!
//! CHL keeps C's integer types (`char`, `short`, `int`, `long`, optionally
//! `unsigned`) and adds the hardware extension the paper argues C lacks:
//! bit-precise integers `uint<N>` / `sint<N>` for any width 1..=64. Arrays
//! are first-class fixed-size aggregates; pointers exist but are restricted
//! (no casts to or from integers, no pointer-to-pointer); channels carry a
//! scalar element type and support rendezvous `send`/`recv`.

use std::fmt;

/// Maximum supported integer width in bits.
pub const MAX_WIDTH: u16 = 64;

/// An integer type: a width in bits plus signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntType {
    /// Width in bits, 1..=64.
    pub width: u16,
    /// Whether values are interpreted as two's-complement signed.
    pub signed: bool,
}

impl IntType {
    /// Creates an integer type.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    pub fn new(width: u16, signed: bool) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "integer width {width} out of range 1..={MAX_WIDTH}"
        );
        IntType { width, signed }
    }

    /// C's `int`: 32-bit signed.
    pub fn int() -> Self {
        IntType::new(32, true)
    }

    /// The mask selecting the low `width` bits.
    #[inline]
    pub fn mask(self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Truncates `v` to this type's width and re-extends it to the canonical
    /// 64-bit representation (sign-extended if signed, zero-extended if not).
    #[inline]
    pub fn canonicalize(self, v: i64) -> i64 {
        let bits = (v as u64) & self.mask();
        if self.signed && self.width < 64 {
            let sign_bit = 1u64 << (self.width - 1);
            if bits & sign_bit != 0 {
                (bits | !self.mask()) as i64
            } else {
                bits as i64
            }
        } else {
            bits as i64
        }
    }

    /// Smallest representable value (canonical form).
    pub fn min_value(self) -> i64 {
        if self.signed {
            self.canonicalize((1i64 << (self.width - 1)).wrapping_neg())
        } else {
            0
        }
    }

    /// Largest representable value (canonical form).
    pub fn max_value(self) -> i64 {
        if self.signed {
            if self.width == 64 {
                i64::MAX
            } else {
                (1i64 << (self.width - 1)) - 1
            }
        } else if self.width == 64 {
            // Canonical form stores bits; u64::MAX canonicalizes to -1 as i64
            // but comparisons for unsigned types must use the bit pattern.
            u64::MAX as i64
        } else {
            self.mask() as i64
        }
    }
}

impl fmt::Display for IntType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.signed, self.width) {
            (true, 8) => write!(f, "char"),
            (true, 16) => write!(f, "short"),
            (true, 32) => write!(f, "int"),
            (true, 64) => write!(f, "long"),
            (false, 8) => write!(f, "unsigned char"),
            (false, 16) => write!(f, "unsigned short"),
            (false, 32) => write!(f, "unsigned int"),
            (false, 64) => write!(f, "unsigned long"),
            (true, w) => write!(f, "sint<{w}>"),
            (false, w) => write!(f, "uint<{w}>"),
        }
    }
}

/// A CHL type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The absence of a value (function returns only).
    Void,
    /// Boolean, synthesized as a single wire.
    Bool,
    /// Integer of a specific width and signedness.
    Int(IntType),
    /// Fixed-size one-dimensional array.
    Array(Box<Type>, usize),
    /// Pointer to a scalar or to an array element.
    Ptr(Box<Type>),
    /// Rendezvous channel carrying elements of the given scalar type.
    Chan(Box<Type>),
}

impl Type {
    /// Shorthand for C's `int`.
    pub fn int() -> Self {
        Type::Int(IntType::int())
    }

    /// Shorthand for `uint<width>`.
    pub fn uint(width: u16) -> Self {
        Type::Int(IntType::new(width, false))
    }

    /// Shorthand for `sint<width>`.
    pub fn sint(width: u16) -> Self {
        Type::Int(IntType::new(width, true))
    }

    /// True for `bool` and integer types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Bool | Type::Int(_))
    }

    /// True for integer types.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// The integer type, if this is one.
    pub fn as_int(&self) -> Option<IntType> {
        match self {
            Type::Int(it) => Some(*it),
            _ => None,
        }
    }

    /// Width in bits when synthesized as a datapath value.
    ///
    /// # Panics
    ///
    /// Panics for `Void`, arrays, and channels, which have no wire width.
    pub fn bit_width(&self) -> u16 {
        match self {
            Type::Bool => 1,
            Type::Int(it) => it.width,
            Type::Ptr(_) => 32,
            other => panic!("type {other} has no bit width"),
        }
    }

    /// The element type of an array or pointer target.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(elem, _) | Type::Ptr(elem) | Type::Chan(elem) => Some(elem),
            _ => None,
        }
    }

    /// Result of C's "usual arithmetic conversions" extended to arbitrary
    /// widths: the common type of a binary arithmetic operation.
    ///
    /// The common type has the maximum of the two widths and is signed only
    /// when both operands are signed (an unsigned operand "wins", as in C).
    /// `bool` operands are promoted to `uint<1>` first.
    pub fn common_int(a: &Type, b: &Type) -> Option<IntType> {
        let pa = Type::promote(a)?;
        let pb = Type::promote(b)?;
        Some(IntType::new(pa.width.max(pb.width), pa.signed && pb.signed))
    }

    /// Integer promotion: `bool` becomes `uint<1>`, integers stay themselves.
    pub fn promote(t: &Type) -> Option<IntType> {
        match t {
            Type::Bool => Some(IntType::new(1, false)),
            Type::Int(it) => Some(*it),
            _ => None,
        }
    }

    /// Total number of scalar elements if this type is stored in a memory
    /// (arrays flatten; scalars count as one).
    pub fn flat_len(&self) -> usize {
        match self {
            Type::Array(elem, n) => n * elem.flat_len(),
            _ => 1,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "bool"),
            Type::Int(it) => write!(f, "{it}"),
            Type::Array(elem, n) => write!(f, "{elem}[{n}]"),
            Type::Ptr(elem) => write!(f, "{elem}*"),
            Type::Chan(elem) => write!(f, "chan<{elem}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_unsigned_wraps() {
        let u8t = IntType::new(8, false);
        assert_eq!(u8t.canonicalize(256), 0);
        assert_eq!(u8t.canonicalize(257), 1);
        assert_eq!(u8t.canonicalize(-1), 255);
    }

    #[test]
    fn canonicalize_signed_sign_extends() {
        let i8t = IntType::new(8, true);
        assert_eq!(i8t.canonicalize(127), 127);
        assert_eq!(i8t.canonicalize(128), -128);
        assert_eq!(i8t.canonicalize(255), -1);
        assert_eq!(i8t.canonicalize(-129), 127);
    }

    #[test]
    fn canonicalize_odd_widths() {
        let u3 = IntType::new(3, false);
        assert_eq!(u3.canonicalize(9), 1);
        let i3 = IntType::new(3, true);
        assert_eq!(i3.canonicalize(4), -4);
        assert_eq!(i3.canonicalize(3), 3);
    }

    #[test]
    fn canonicalize_full_width_identity() {
        let i64t = IntType::new(64, true);
        assert_eq!(i64t.canonicalize(i64::MIN), i64::MIN);
        assert_eq!(i64t.canonicalize(i64::MAX), i64::MAX);
    }

    #[test]
    fn min_max_values() {
        let i4 = IntType::new(4, true);
        assert_eq!(i4.min_value(), -8);
        assert_eq!(i4.max_value(), 7);
        let u4 = IntType::new(4, false);
        assert_eq!(u4.min_value(), 0);
        assert_eq!(u4.max_value(), 15);
    }

    #[test]
    fn common_type_follows_c_rules() {
        // unsigned wins, width maxes.
        let c = Type::common_int(&Type::uint(8), &Type::sint(16)).unwrap();
        assert_eq!(c, IntType::new(16, false));
        let c = Type::common_int(&Type::sint(32), &Type::sint(12)).unwrap();
        assert_eq!(c, IntType::new(32, true));
        let c = Type::common_int(&Type::Bool, &Type::Bool).unwrap();
        assert_eq!(c, IntType::new(1, false));
    }

    #[test]
    fn display_round_trips_c_names() {
        assert_eq!(Type::int().to_string(), "int");
        assert_eq!(Type::uint(12).to_string(), "uint<12>");
        assert_eq!(
            Type::Array(Box::new(Type::uint(8)), 16).to_string(),
            "unsigned char[16]"
        );
        assert_eq!(
            Type::Array(Box::new(Type::uint(12)), 16).to_string(),
            "uint<12>[16]"
        );
        assert_eq!(Type::Chan(Box::new(Type::int())).to_string(), "chan<int>");
    }

    #[test]
    fn flat_len_nested() {
        let t = Type::Array(Box::new(Type::Array(Box::new(Type::int()), 3)), 4);
        assert_eq!(t.flat_len(), 12);
        assert_eq!(Type::int().flat_len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        IntType::new(0, false);
    }
}
