//! FSMD: finite-state machine with datapath.
//!
//! The common hardware form emitted by the clocked synthesis backends
//! (Transmogrifier C, Handel-C, HardwareC, C2Verilog): a state machine
//! where each state evaluates datapath expressions ([`Rv`]) from the
//! *current* register/memory contents and commits all its [`Action`]s
//! simultaneously at the clock edge. One state = one clock cycle.
//!
//! The simultaneous-commit semantics matter: Handel-C's
//! `par { a = b; b = a; }` genuinely swaps, because both right-hand sides
//! are sampled before either register updates.
//!
//! Area model: within one state every operation needs its own functional
//! unit, but units are shared *across* states (classic datapath binding),
//! so the area charged for each (op class, width) pair is the maximum
//! number of simultaneous uses over all states.

use crate::cost::{CostModel, OpClass};
use crate::netlist::bin_class;
use chls_frontend::IntType;
use chls_ir::{BinKind, UnKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a datapath register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// Index of a memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

/// Index of a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateId(pub u32);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem{}", self.0)
    }
}

/// A datapath register.
#[derive(Debug, Clone, PartialEq)]
pub struct RegInfo {
    /// Name (for Verilog and debugging).
    pub name: String,
    /// Width/signedness.
    pub ty: IntType,
    /// Reset value.
    pub init: i64,
}

/// A memory attached to the datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmdMem {
    /// Name.
    pub name: String,
    /// Element type.
    pub elem: IntType,
    /// Word count.
    pub len: usize,
    /// Constant contents for ROMs.
    pub rom: Option<Vec<i64>>,
    /// Bound to the caller's argument at this parameter index, if any.
    pub param_index: Option<usize>,
}

/// A datapath expression, evaluated combinationally within one state.
#[derive(Debug, Clone, PartialEq)]
pub struct Rv {
    /// Node.
    pub kind: RvKind,
    /// Result type (`u1` for comparisons).
    pub ty: IntType,
}

/// Datapath expression nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum RvKind {
    /// Constant.
    Const(i64),
    /// Current value of a register.
    Reg(RegId),
    /// A primary input (stable for the whole run).
    Input(usize),
    /// Unary operation.
    Un(UnKind, Box<Rv>),
    /// Binary operation.
    Bin(BinKind, Box<Rv>, Box<Rv>),
    /// `sel ? a : b`.
    Mux(Box<Rv>, Box<Rv>, Box<Rv>),
    /// Width conversion.
    Cast(Box<Rv>),
    /// Combinational memory read.
    MemRead {
        /// Which memory.
        mem: MemId,
        /// Element address.
        addr: Box<Rv>,
    },
}

impl Rv {
    /// Constant of a type.
    pub fn konst(v: i64, ty: IntType) -> Rv {
        Rv {
            kind: RvKind::Const(ty.canonicalize(v)),
            ty,
        }
    }

    /// Register read.
    pub fn reg(r: RegId, ty: IntType) -> Rv {
        Rv {
            kind: RvKind::Reg(r),
            ty,
        }
    }

    /// Binary operation with explicit result type.
    pub fn bin(op: BinKind, ty: IntType, a: Rv, b: Rv) -> Rv {
        Rv {
            kind: RvKind::Bin(op, Box::new(a), Box::new(b)),
            ty,
        }
    }

    /// Visits every node in the tree.
    pub fn for_each_node(&self, f: &mut impl FnMut(&Rv)) {
        f(self);
        match &self.kind {
            RvKind::Const(_) | RvKind::Reg(_) | RvKind::Input(_) => {}
            RvKind::Un(_, a) | RvKind::Cast(a) => a.for_each_node(f),
            RvKind::Bin(_, a, b) => {
                a.for_each_node(f);
                b.for_each_node(f);
            }
            RvKind::Mux(s, a, b) => {
                s.for_each_node(f);
                a.for_each_node(f);
                b.for_each_node(f);
            }
            RvKind::MemRead { addr, .. } => addr.for_each_node(f),
        }
    }

    /// Cost class of the root node, if it represents real hardware.
    fn op_class(&self) -> Option<(OpClass, u16)> {
        match &self.kind {
            RvKind::Const(_) | RvKind::Reg(_) | RvKind::Input(_) | RvKind::Cast(_) => None,
            RvKind::Un(UnKind::Neg, a) => Some((OpClass::AddSub, a.ty.width)),
            RvKind::Un(UnKind::Not, a) => Some((OpClass::Logic, a.ty.width)),
            RvKind::Bin(op, a, _) => Some((bin_class(*op), a.ty.width.max(self.ty.width))),
            RvKind::Mux(..) => Some((OpClass::Mux, self.ty.width)),
            RvKind::MemRead { .. } => None, // charged per memory port
        }
    }
}

/// An effect committed at the end of a state's cycle, optionally guarded
/// by a 1-bit datapath condition (a synthesized clock-enable).
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Commit only when this evaluates to 1 (always, when `None`).
    pub guard: Option<Rv>,
    /// The effect.
    pub kind: ActionKind,
}

impl Action {
    /// An unguarded register transfer.
    pub fn set(reg: RegId, value: Rv) -> Self {
        Action {
            guard: None,
            kind: ActionKind::SetReg(reg, value),
        }
    }

    /// A guarded register transfer.
    pub fn set_if(guard: Rv, reg: RegId, value: Rv) -> Self {
        Action {
            guard: Some(guard),
            kind: ActionKind::SetReg(reg, value),
        }
    }

    /// An unguarded memory write.
    pub fn write(mem: MemId, addr: Rv, value: Rv) -> Self {
        Action {
            guard: None,
            kind: ActionKind::MemWrite { mem, addr, value },
        }
    }

    /// A guarded memory write.
    pub fn write_if(guard: Rv, mem: MemId, addr: Rv, value: Rv) -> Self {
        Action {
            guard: Some(guard),
            kind: ActionKind::MemWrite { mem, addr, value },
        }
    }
}

/// The effect of an [`Action`].
#[derive(Debug, Clone, PartialEq)]
pub enum ActionKind {
    /// `reg <= value`.
    SetReg(RegId, Rv),
    /// `mem[addr] <= value`.
    MemWrite {
        /// Which memory.
        mem: MemId,
        /// Element address.
        addr: Rv,
        /// Stored value.
        value: Rv,
    },
}

/// Control transfer out of a state.
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub enum NextState {
    /// Unconditional.
    Goto(StateId),
    /// Two-way branch on a 1-bit datapath value.
    Branch {
        /// Condition.
        cond: Rv,
        /// Target when 1.
        then: StateId,
        /// Target when 0.
        els: StateId,
    },
    /// Priority-ordered multi-way dispatch: the first case whose condition
    /// is 1 wins; otherwise `default`.
    Cases {
        /// (condition, target) pairs in priority order.
        cases: Vec<(Rv, StateId)>,
        /// Fallback target.
        default: StateId,
    },
    /// Execution complete; the return value (if any) is sampled.
    #[default]
    Done,
}

/// One state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct State {
    /// Register transfers and memory writes this state performs.
    pub actions: Vec<Action>,
    /// Where to go next.
    pub next: NextState,
}


/// Direction of a blocked channel endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanDir {
    /// The process is blocked trying to send.
    Send,
    /// The process is blocked trying to receive.
    Recv,
}

impl std::fmt::Display for ChanDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChanDir::Send => write!(f, "send"),
            ChanDir::Recv => write!(f, "recv"),
        }
    }
}

/// One process blocked on one channel endpoint in a stuck configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedOp {
    /// Human-readable process label (e.g. `arm 0`).
    pub process: String,
    /// Channel name from the source program.
    pub channel: String,
    /// Which endpoint the process is blocked on.
    pub dir: ChanDir,
}

/// A statically identified stuck configuration: a state in which every
/// live process is blocked on an unmatched rendezvous, so the machine
/// can never make progress again. Backends that build a product FSM
/// over concurrent processes (handelc) record these so the simulators
/// can report a first-class deadlock instead of spinning to the cycle
/// limit.
#[derive(Debug, Clone, PartialEq)]
pub struct StuckState {
    /// The deadlocked state.
    pub state: StateId,
    /// Every blocked (process, channel, direction) triple.
    pub blocked: Vec<BlockedOp>,
}

/// A complete FSMD design.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Fsmd {
    /// Module name.
    pub name: String,
    /// Scalar inputs (name, type), stable for a whole run.
    pub inputs: Vec<(String, IntType)>,
    /// Parameter index of each input, for binding arguments.
    pub input_params: Vec<usize>,
    /// Datapath registers.
    pub regs: Vec<RegInfo>,
    /// Memories.
    pub mems: Vec<FsmdMem>,
    /// States.
    pub states: Vec<State>,
    /// Start state.
    pub entry: StateId,
    /// Value sampled when the machine reaches [`NextState::Done`].
    pub ret: Option<Rv>,
    /// Statically identified deadlocked configurations (see
    /// [`StuckState`]). Empty for designs without concurrency.
    pub stuck: Vec<StuckState>,
}

impl Fsmd {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Fsmd {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a register.
    pub fn add_reg(&mut self, name: impl Into<String>, ty: IntType, init: i64) -> RegId {
        let id = RegId(self.regs.len() as u32);
        self.regs.push(RegInfo {
            name: name.into(),
            ty,
            init: ty.canonicalize(init),
        });
        id
    }

    /// Adds a memory.
    pub fn add_mem(&mut self, mem: FsmdMem) -> MemId {
        let id = MemId(self.mems.len() as u32);
        self.mems.push(mem);
        id
    }

    /// Adds a scalar input bound to a parameter index.
    pub fn add_input(&mut self, name: impl Into<String>, ty: IntType, param: usize) -> usize {
        self.inputs.push((name.into(), ty));
        self.input_params.push(param);
        self.inputs.len() - 1
    }

    /// Adds an empty state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(State::default());
        id
    }

    /// Mutable access to a state.
    pub fn state_mut(&mut self, s: StateId) -> &mut State {
        &mut self.states[s.0 as usize]
    }

    /// The state for an id.
    pub fn state(&self, s: StateId) -> &State {
        &self.states[s.0 as usize]
    }

    /// Functional-unit requirements: for each (class, width), the maximum
    /// number of simultaneous uses in any single state.
    pub fn fu_requirements(&self) -> HashMap<(OpClass, u16), usize> {
        let mut worst: HashMap<(OpClass, u16), usize> = HashMap::new();
        for st in &self.states {
            let mut here: HashMap<(OpClass, u16), usize> = HashMap::new();
            let mut count = |rv: &Rv| {
                rv.for_each_node(&mut |n| {
                    if let Some(key) = n.op_class() {
                        *here.entry(key).or_insert(0) += 1;
                    }
                });
            };
            for a in &st.actions {
                if let Some(g) = &a.guard {
                    count(g);
                }
                match &a.kind {
                    ActionKind::SetReg(_, rv) => count(rv),
                    ActionKind::MemWrite { addr, value, .. } => {
                        count(addr);
                        count(value);
                    }
                }
            }
            match &st.next {
                NextState::Branch { cond, .. } => count(cond),
                NextState::Cases { cases, .. } => {
                    for (c, _) in cases {
                        count(c);
                    }
                }
                _ => {}
            }
            for (k, v) in here {
                let e = worst.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
        }
        worst
    }

    /// Total area in NAND2-equivalent gates: shared functional units,
    /// registers, memories, and the (log2-encoded) state register.
    pub fn area(&self, model: &CostModel) -> f64 {
        let mut total = 0.0;
        for ((class, width), n) in self.fu_requirements() {
            total += model.area(class, width) * n as f64;
        }
        for r in &self.regs {
            total += model.reg_area(r.ty.width);
        }
        for m in &self.mems {
            total += model.ram_area(m.len, m.elem);
        }
        let state_bits = (self.states.len().max(2) as f64).log2().ceil();
        total += model.reg_area(state_bits as u16) + 6.0 * state_bits * self.states.len() as f64;
        total
    }

    /// Longest combinational delay of any state's datapath, in ns — the
    /// minimum clock period the design supports.
    pub fn critical_path(&self, model: &CostModel) -> f64 {
        let mut worst: f64 = 0.0;
        for st in &self.states {
            for a in &st.actions {
                if let Some(g) = &a.guard {
                    worst = worst.max(self.rv_delay(g, model));
                }
                match &a.kind {
                    ActionKind::SetReg(_, rv) => worst = worst.max(self.rv_delay(rv, model)),
                    ActionKind::MemWrite { addr, value, .. } => {
                        let t = self
                            .rv_delay(addr, model)
                            .max(self.rv_delay(value, model))
                            + model.delay(OpClass::MemWrite, 1);
                        worst = worst.max(t);
                    }
                }
            }
            match &st.next {
                NextState::Branch { cond, .. } => {
                    worst = worst.max(self.rv_delay(cond, model));
                }
                NextState::Cases { cases, .. } => {
                    for (c, _) in cases {
                        worst = worst.max(self.rv_delay(c, model));
                    }
                }
                _ => {}
            }
        }
        worst
    }

    /// Maximum clock frequency in MHz.
    pub fn fmax_mhz(&self, model: &CostModel) -> f64 {
        let period = self.critical_path(model) + model.sequential_overhead_ns;
        if period <= 0.0 {
            f64::INFINITY
        } else {
            1000.0 / period
        }
    }

    /// Combinational arrival time of a datapath expression.
    pub fn rv_delay(&self, rv: &Rv, model: &CostModel) -> f64 {
        match &rv.kind {
            RvKind::Const(_) | RvKind::Reg(_) | RvKind::Input(_) => 0.0,
            RvKind::Cast(a) => self.rv_delay(a, model),
            RvKind::Un(op, a) => {
                let class = match op {
                    UnKind::Neg => OpClass::AddSub,
                    UnKind::Not => OpClass::Logic,
                };
                self.rv_delay(a, model) + model.delay(class, a.ty.width)
            }
            RvKind::Bin(op, a, b) => {
                let w = a.ty.width.max(rv.ty.width);
                self.rv_delay(a, model).max(self.rv_delay(b, model))
                    + model.delay(bin_class(*op), w)
            }
            RvKind::Mux(s, a, b) => {
                self.rv_delay(s, model)
                    .max(self.rv_delay(a, model))
                    .max(self.rv_delay(b, model))
                    + model.delay(OpClass::Mux, rv.ty.width)
            }
            RvKind::MemRead { mem, addr } => {
                self.rv_delay(addr, model)
                    + model.ram_read_delay(self.mems[mem.0 as usize].len)
            }
        }
    }

    /// Maximum simultaneous reads/writes of each memory in any state
    /// (for port-count checks).
    pub fn mem_port_usage(&self) -> Vec<(usize, usize)> {
        let mut usage = vec![(0usize, 0usize); self.mems.len()];
        for st in &self.states {
            let mut here = vec![(0usize, 0usize); self.mems.len()];
            let count_reads = |rv: &Rv, here: &mut Vec<(usize, usize)>| {
                rv.for_each_node(&mut |n| {
                    if let RvKind::MemRead { mem, .. } = &n.kind {
                        here[mem.0 as usize].0 += 1;
                    }
                });
            };
            for a in &st.actions {
                if let Some(g) = &a.guard {
                    count_reads(g, &mut here);
                }
                match &a.kind {
                    ActionKind::SetReg(_, rv) => count_reads(rv, &mut here),
                    ActionKind::MemWrite { mem, addr, value } => {
                        here[mem.0 as usize].1 += 1;
                        count_reads(addr, &mut here);
                        count_reads(value, &mut here);
                    }
                }
            }
            match &st.next {
                NextState::Branch { cond, .. } => count_reads(cond, &mut here),
                NextState::Cases { cases, .. } => {
                    for (c, _) in cases {
                        count_reads(c, &mut here);
                    }
                }
                _ => {}
            }
            for (i, (r, w)) in here.into_iter().enumerate() {
                usage[i].0 = usage[i].0.max(r);
                usage[i].1 = usage[i].1.max(w);
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i32t() -> IntType {
        IntType::new(32, true)
    }

    /// A two-state counter: s0 increments until r == 5, then done.
    fn counter() -> Fsmd {
        let mut f = Fsmd::new("counter");
        let r = f.add_reg("r", i32t(), 0);
        let s0 = f.add_state();
        let one = Rv::konst(1, i32t());
        let next = Rv::bin(BinKind::Add, i32t(), Rv::reg(r, i32t()), one);
        f.state_mut(s0).actions.push(Action::set(r, next));
        let five = Rv::konst(5, i32t());
        let done = Rv {
            kind: RvKind::Bin(
                BinKind::Eq,
                Box::new(Rv::reg(r, i32t())),
                Box::new(five),
            ),
            ty: IntType::new(1, false),
        };
        let s1 = f.add_state();
        f.state_mut(s0).next = NextState::Branch {
            cond: done,
            then: s1,
            els: s0,
        };
        f.state_mut(s1).next = NextState::Done;
        f.ret = Some(Rv::reg(r, i32t()));
        f
    }

    #[test]
    fn fu_requirements_max_over_states() {
        let f = counter();
        let req = f.fu_requirements();
        assert_eq!(req.get(&(OpClass::AddSub, 32)), Some(&1));
        assert_eq!(req.get(&(OpClass::Cmp, 32)), Some(&1));
    }

    #[test]
    fn area_includes_regs_and_state_machine() {
        let f = counter();
        let m = CostModel::new();
        let a = f.area(&m);
        assert!(a > m.reg_area(32), "area {a} too small");
    }

    #[test]
    fn critical_path_positive() {
        let f = counter();
        let m = CostModel::new();
        let cp = f.critical_path(&m);
        assert!(cp > 0.0);
        assert!(f.fmax_mhz(&m).is_finite());
    }

    #[test]
    fn mem_ports_counted() {
        let mut f = Fsmd::new("m");
        let mem = f.add_mem(FsmdMem {
            name: "a".into(),
            elem: i32t(),
            len: 8,
            rom: None,
            param_index: None,
        });
        let r = f.add_reg("r", i32t(), 0);
        let s0 = f.add_state();
        // Two reads and one write in one state.
        let addr0 = Rv::konst(0, i32t());
        let addr1 = Rv::konst(1, i32t());
        let rd0 = Rv {
            kind: RvKind::MemRead {
                mem,
                addr: Box::new(addr0.clone()),
            },
            ty: i32t(),
        };
        let rd1 = Rv {
            kind: RvKind::MemRead {
                mem,
                addr: Box::new(addr1),
            },
            ty: i32t(),
        };
        let sum = Rv::bin(BinKind::Add, i32t(), rd0, rd1);
        f.state_mut(s0).actions.push(Action::set(r, sum));
        f.state_mut(s0)
            .actions
            .push(Action::write(mem, addr0, Rv::reg(r, i32t())));
        f.state_mut(s0).next = NextState::Done;
        assert_eq!(f.mem_port_usage(), vec![(2, 1)]);
    }

    #[test]
    fn shared_fu_area_cheaper_than_duplicated() {
        // Two adds in different states share one adder.
        let mut two_states = Fsmd::new("a");
        let r = two_states.add_reg("r", i32t(), 0);
        let s0 = two_states.add_state();
        let s1 = two_states.add_state();
        let add = || {
            Rv::bin(
                BinKind::Add,
                i32t(),
                Rv::reg(RegId(0), i32t()),
                Rv::konst(1, i32t()),
            )
        };
        two_states
            .state_mut(s0)
            .actions
            .push(Action::set(r, add()));
        two_states.state_mut(s0).next = NextState::Goto(s1);
        two_states
            .state_mut(s1)
            .actions
            .push(Action::set(r, add()));
        two_states.state_mut(s1).next = NextState::Done;

        // The same two adds in one state need two adders.
        let mut one_state = Fsmd::new("b");
        let q = one_state.add_reg("q", i32t(), 0);
        let p = one_state.add_reg("p", i32t(), 0);
        let s = one_state.add_state();
        one_state
            .state_mut(s)
            .actions
            .push(Action::set(q, add()));
        one_state
            .state_mut(s)
            .actions
            .push(Action::set(p, add()));
        one_state.state_mut(s).next = NextState::Done;

        assert_eq!(
            two_states.fu_requirements().get(&(OpClass::AddSub, 32)),
            Some(&1)
        );
        assert_eq!(
            one_state.fu_requirements().get(&(OpClass::AddSub, 32)),
            Some(&2)
        );
    }
}
