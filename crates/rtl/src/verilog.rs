//! Verilog-2001 emission for netlists and FSMDs.
//!
//! Netlists emit structurally (one `assign`/`always` per cell); FSMDs emit
//! the classic two-process style (combinational next-state/datapath `case`
//! plus a clocked commit process). Handshake: designs start on `start` and
//! raise `done` with the return value held on `ret`.

use crate::fsmd::{ActionKind, Fsmd, NextState, Rv, RvKind};
use crate::netlist::{CellKind, Netlist};
use chls_frontend::IntType;
use chls_ir::{BinKind, UnKind};
use std::fmt::Write;

fn vrange(ty: IntType) -> String {
    if ty.width == 1 {
        String::new()
    } else {
        format!("[{}:0] ", ty.width - 1)
    }
}

fn vconst(v: i64, ty: IntType) -> String {
    let bits = (v as u64) & ty.mask();
    format!("{}'h{bits:x}", ty.width)
}

fn bin_op_str(op: BinKind, signed: bool) -> &'static str {
    match op {
        BinKind::Add => "+",
        BinKind::Sub => "-",
        BinKind::Mul => "*",
        BinKind::Div => "/",
        BinKind::Rem => "%",
        BinKind::Shl => "<<",
        BinKind::Shr => {
            if signed {
                ">>>"
            } else {
                ">>"
            }
        }
        BinKind::And => "&",
        BinKind::Or => "|",
        BinKind::Xor => "^",
        BinKind::Eq => "==",
        BinKind::Ne => "!=",
        BinKind::Lt => "<",
        BinKind::Le => "<=",
        BinKind::Gt => ">",
        BinKind::Ge => ">=",
    }
}

fn sign_wrap(expr: &str, signed: bool) -> String {
    if signed {
        format!("$signed({expr})")
    } else {
        expr.to_string()
    }
}

/// Emits structural Verilog for a netlist.
pub fn netlist_to_verilog(nl: &Netlist) -> String {
    let mut s = String::new();
    let mut ports: Vec<String> = vec!["clk".to_string()];
    for c in &nl.cells {
        if let CellKind::Input { name } = &c.kind {
            ports.push(name.clone());
        }
    }
    for (name, _) in &nl.outputs {
        ports.push(name.clone());
    }
    let _ = writeln!(s, "module {} (", nl.name);
    let _ = writeln!(s, "  input wire clk,");
    let mut first_decls = Vec::new();
    for c in &nl.cells {
        if let CellKind::Input { name } = &c.kind {
            first_decls.push(format!("  input wire {}{}", vrange(c.ty), name));
        }
    }
    for (name, net) in &nl.outputs {
        first_decls.push(format!(
            "  output wire {}{}",
            vrange(nl.cell(*net).ty),
            name
        ));
    }
    let _ = writeln!(s, "{}", first_decls.join(",\n"));
    let _ = writeln!(s, ");");

    // Declarations.
    for (i, c) in nl.cells.iter().enumerate() {
        match &c.kind {
            CellKind::Input { .. } => {}
            CellKind::Reg { .. } => {
                let _ = writeln!(s, "  reg {}n{i};", vrange(c.ty));
            }
            _ => {
                let _ = writeln!(s, "  wire {}n{i};", vrange(c.ty));
            }
        }
    }
    for (ri, r) in nl.rams.iter().enumerate() {
        let _ = writeln!(
            s,
            "  reg {}ram{ri} [0:{}]; // {}",
            vrange(r.elem),
            r.len.saturating_sub(1),
            r.name
        );
        if let Some(init) = &r.init {
            let _ = writeln!(s, "  initial begin");
            for (j, v) in init.iter().enumerate() {
                let _ = writeln!(s, "    ram{ri}[{j}] = {};", vconst(*v, r.elem));
            }
            let _ = writeln!(s, "  end");
        }
    }

    // Cell logic.
    let name_of = |id: crate::netlist::CellId| -> String {
        match &nl.cell(id).kind {
            CellKind::Input { name } => name.clone(),
            _ => format!("n{}", id.0),
        }
    };
    for (i, c) in nl.cells.iter().enumerate() {
        match &c.kind {
            CellKind::Input { .. } => {}
            CellKind::Const(v) => {
                let _ = writeln!(s, "  assign n{i} = {};", vconst(*v, c.ty));
            }
            CellKind::Un(UnKind::Neg, a) => {
                let _ = writeln!(s, "  assign n{i} = -{};", name_of(*a));
            }
            CellKind::Un(UnKind::Not, a) => {
                let _ = writeln!(s, "  assign n{i} = ~{};", name_of(*a));
            }
            CellKind::Bin(op, a, b) => {
                let signed = if op.is_comparison() {
                    nl.cell(*a).ty.signed
                } else {
                    c.ty.signed
                };
                let (sa, sb) = (
                    sign_wrap(&name_of(*a), signed),
                    sign_wrap(&name_of(*b), signed),
                );
                let sb = if matches!(op, BinKind::Shl | BinKind::Shr) {
                    name_of(*b)
                } else {
                    sb
                };
                let _ = writeln!(s, "  assign n{i} = {sa} {} {sb};", bin_op_str(*op, signed));
            }
            CellKind::Mux { sel, a, b } => {
                let _ = writeln!(
                    s,
                    "  assign n{i} = {} ? {} : {};",
                    name_of(*sel),
                    name_of(*a),
                    name_of(*b)
                );
            }
            CellKind::Cast { from, val } => {
                let inner = if from.signed && c.ty.width > from.width {
                    format!(
                        "{{{{{}{{{}[{}]}}}}, {}}}",
                        c.ty.width - from.width,
                        name_of(*val),
                        from.width - 1,
                        name_of(*val)
                    )
                } else {
                    name_of(*val)
                };
                let _ = writeln!(s, "  assign n{i} = {inner};");
            }
            CellKind::Reg { next, en, init } => {
                let _ = writeln!(s, "  initial n{i} = {};", vconst(*init, c.ty));
                let _ = writeln!(s, "  always @(posedge clk)");
                match en {
                    Some(e) => {
                        let _ = writeln!(
                            s,
                            "    if ({}) n{i} <= {};",
                            name_of(*e),
                            name_of(*next)
                        );
                    }
                    None => {
                        let _ = writeln!(s, "    n{i} <= {};", name_of(*next));
                    }
                }
            }
            CellKind::RamRead { ram, addr } => {
                let _ = writeln!(s, "  assign n{i} = ram{}[{}];", ram.0, name_of(*addr));
            }
            CellKind::RamWrite { ram, addr, data, en } => {
                let _ = writeln!(s, "  always @(posedge clk)");
                let _ = writeln!(
                    s,
                    "    if ({}) ram{}[{}] <= {};",
                    name_of(*en),
                    ram.0,
                    name_of(*addr),
                    name_of(*data)
                );
            }
        }
    }
    for (name, net) in &nl.outputs {
        let _ = writeln!(s, "  assign {name} = {};", name_of(*net));
    }
    let _ = writeln!(s, "endmodule");
    s
}

/// Emits two-process behavioral Verilog for an FSMD.
pub fn fsmd_to_verilog(f: &Fsmd) -> String {
    let mut s = String::new();
    let state_bits = (usize::BITS - (f.states.len().max(2) - 1).leading_zeros()) as u16;
    let _ = writeln!(s, "module {} (", f.name);
    let _ = writeln!(s, "  input wire clk,");
    let _ = writeln!(s, "  input wire start,");
    for (name, ty) in &f.inputs {
        let _ = writeln!(s, "  input wire {}{},", vrange(*ty), name);
    }
    let _ = writeln!(s, "  output reg done");
    if let Some(ret) = &f.ret {
        let _ = writeln!(s, "  , output reg {}ret", vrange(ret.ty));
    }
    let _ = writeln!(s, ");");
    let _ = writeln!(s, "  reg [{}:0] state;", state_bits.max(1) - 1);
    for r in &f.regs {
        let _ = writeln!(s, "  reg {}{};", vrange(r.ty), sanitize(&r.name));
    }
    for (mi, m) in f.mems.iter().enumerate() {
        let _ = writeln!(
            s,
            "  reg {}mem{mi} [0:{}]; // {}",
            vrange(m.elem),
            m.len.saturating_sub(1),
            m.name
        );
        if let Some(rom) = &m.rom {
            let _ = writeln!(s, "  initial begin");
            for (j, v) in rom.iter().enumerate() {
                let _ = writeln!(s, "    mem{mi}[{j}] = {};", vconst(*v, m.elem));
            }
            let _ = writeln!(s, "  end");
        }
    }

    let _ = writeln!(s, "  always @(posedge clk) begin");
    let _ = writeln!(s, "    if (start) begin");
    let _ = writeln!(s, "      state <= {};", f.entry.0);
    let _ = writeln!(s, "      done <= 1'b0;");
    for r in &f.regs {
        let _ = writeln!(
            s,
            "      {} <= {};",
            sanitize(&r.name),
            vconst(r.init, r.ty)
        );
    }
    let _ = writeln!(s, "    end else if (!done) begin");
    let _ = writeln!(s, "      case (state)");
    for (si, st) in f.states.iter().enumerate() {
        let _ = writeln!(s, "        {}: begin", si);
        for a in &st.actions {
            let guard = a
                .guard
                .as_ref()
                .map(|g| format!("if ({}) ", rv_expr(f, g)))
                .unwrap_or_default();
            match &a.kind {
                ActionKind::SetReg(r, rv) => {
                    let _ = writeln!(
                        s,
                        "          {guard}{} <= {};",
                        sanitize(&f.regs[r.0 as usize].name),
                        rv_expr(f, rv)
                    );
                }
                ActionKind::MemWrite { mem, addr, value } => {
                    let _ = writeln!(
                        s,
                        "          {guard}mem{}[{}] <= {};",
                        mem.0,
                        rv_expr(f, addr),
                        rv_expr(f, value)
                    );
                }
            }
        }
        match &st.next {
            NextState::Goto(t) => {
                let _ = writeln!(s, "          state <= {};", t.0);
            }
            NextState::Branch { cond, then, els } => {
                let _ = writeln!(
                    s,
                    "          state <= ({}) ? {} : {};",
                    rv_expr(f, cond),
                    then.0,
                    els.0
                );
            }
            NextState::Cases { cases, default } => {
                let mut expr = format!("{}", default.0);
                for (c, t) in cases.iter().rev() {
                    expr = format!("({}) ? {} : ({expr})", rv_expr(f, c), t.0);
                }
                let _ = writeln!(s, "          state <= {expr};");
            }
            NextState::Done => {
                let _ = writeln!(s, "          done <= 1'b1;");
                if let Some(ret) = &f.ret {
                    let _ = writeln!(s, "          ret <= {};", rv_expr(f, ret));
                }
            }
        }
        let _ = writeln!(s, "        end");
    }
    let _ = writeln!(s, "      endcase");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s, "endmodule");
    s
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        out.insert(0, '_');
    }
    out
}

fn rv_expr(f: &Fsmd, rv: &Rv) -> String {
    match &rv.kind {
        RvKind::Const(v) => vconst(*v, rv.ty),
        RvKind::Reg(r) => sanitize(&f.regs[r.0 as usize].name),
        RvKind::Input(i) => f.inputs[*i].0.clone(),
        RvKind::Un(UnKind::Neg, a) => format!("(-{})", rv_expr(f, a)),
        RvKind::Un(UnKind::Not, a) => format!("(~{})", rv_expr(f, a)),
        RvKind::Bin(op, a, b) => {
            let signed = if op.is_comparison() {
                a.ty.signed
            } else {
                rv.ty.signed
            };
            let sa = sign_wrap(&rv_expr(f, a), signed);
            let sb = if matches!(op, BinKind::Shl | BinKind::Shr) {
                rv_expr(f, b)
            } else {
                sign_wrap(&rv_expr(f, b), signed)
            };
            format!("({sa} {} {sb})", bin_op_str(*op, signed))
        }
        RvKind::Mux(sel, a, b) => format!(
            "({} ? {} : {})",
            rv_expr(f, sel),
            rv_expr(f, a),
            rv_expr(f, b)
        ),
        RvKind::Cast(a) => rv_expr(f, a),
        RvKind::MemRead { mem, addr } => format!("mem{}[{}]", mem.0, rv_expr(f, addr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsmd::NextState;
    use chls_ir::BinKind;

    fn u(w: u16) -> IntType {
        IntType::new(w, false)
    }

    #[test]
    fn netlist_emits_module_with_ports() {
        let mut nl = Netlist::new("adder");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let b = nl.add(CellKind::Input { name: "b".into() }, u(8));
        let sum = nl.add(CellKind::Bin(BinKind::Add, a, b), u(8));
        nl.set_output("sum", sum);
        let v = netlist_to_verilog(&nl);
        assert!(v.contains("module adder"), "{v}");
        assert!(v.contains("input wire [7:0] a"), "{v}");
        assert!(v.contains("output wire [7:0] sum"), "{v}");
        assert!(v.contains("assign n2 = a + b;"), "{v}");
        assert!(v.contains("endmodule"), "{v}");
    }

    #[test]
    fn signed_comparison_uses_signed() {
        let mut nl = Netlist::new("c");
        let a = nl.add(CellKind::Input { name: "a".into() }, IntType::new(8, true));
        let b = nl.add(CellKind::Input { name: "b".into() }, IntType::new(8, true));
        let lt = nl.add(CellKind::Bin(BinKind::Lt, a, b), u(1));
        nl.set_output("lt", lt);
        let v = netlist_to_verilog(&nl);
        assert!(v.contains("$signed(a) < $signed(b)"), "{v}");
    }

    #[test]
    fn register_emits_clocked_always() {
        let mut nl = Netlist::new("r");
        let d = nl.add(CellKind::Input { name: "d".into() }, u(4));
        let q = nl.add(
            CellKind::Reg {
                next: d,
                init: 5,
                en: None,
            },
            u(4),
        );
        nl.set_output("q", q);
        let v = netlist_to_verilog(&nl);
        assert!(v.contains("always @(posedge clk)"), "{v}");
        assert!(v.contains("n1 <= d;"), "{v}");
        assert!(v.contains("initial n1 = 4'h5;"), "{v}");
    }

    #[test]
    fn fsmd_emits_case_machine() {
        let mut f = Fsmd::new("count");
        let ty = IntType::new(8, false);
        let r = f.add_reg("r", ty, 0);
        let s0 = f.add_state();
        f.state_mut(s0).actions.push(crate::fsmd::Action::set(
            r,
            Rv::bin(BinKind::Add, ty, Rv::reg(r, ty), Rv::konst(1, ty)),
        ));
        f.state_mut(s0).next = NextState::Done;
        f.ret = Some(Rv::reg(r, ty));
        let v = fsmd_to_verilog(&f);
        assert!(v.contains("module count"), "{v}");
        assert!(v.contains("case (state)"), "{v}");
        assert!(v.contains("r <= (r + 8'h1);"), "{v}");
        assert!(v.contains("done <= 1'b1;"), "{v}");
        assert!(v.contains("ret <= r;"), "{v}");
    }

    #[test]
    fn rom_initialized_in_verilog() {
        let mut f = Fsmd::new("rom");
        f.add_mem(crate::fsmd::FsmdMem {
            name: "t".into(),
            elem: u(8),
            len: 3,
            rom: Some(vec![1, 2, 3]),
            param_index: None,
        });
        let s = f.add_state();
        f.state_mut(s).next = NextState::Done;
        let v = fsmd_to_verilog(&f);
        assert!(v.contains("mem0[0] = 8'h1;"), "{v}");
        assert!(v.contains("mem0[2] = 8'h3;"), "{v}");
    }

    #[test]
    fn sanitize_identifier() {
        assert_eq!(sanitize("$t0"), "_t0");
        assert_eq!(sanitize("a b"), "a_b");
        assert_eq!(sanitize("3x"), "_3x");
    }
}
