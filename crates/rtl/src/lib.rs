//! # chls-rtl
//!
//! The register-transfer-level substrate of the `chls` laboratory:
//!
//! * [`netlist`] — word-level netlists (the Cones backend's combinational
//!   output and the lowered form of everything else);
//! * [`fsmd`] — finite-state machine + datapath designs, the common target
//!   of the clocked backends;
//! * [`builder`] — Ocapi-style structural construction (run a program to
//!   build hardware);
//! * [`verilog`] — Verilog-2001 emission;
//! * [`cost`] — the technology-independent area/delay model every report
//!   in the experiment suite pulls numbers from.

pub mod bdd;
pub mod builder;
pub mod cost;
pub mod fsmd;
pub mod lower;
pub mod netlist;
pub mod verilog;

pub use bdd::{check_equivalence, BddError, Equivalence};
pub use cost::{CostModel, OpClass};
pub use fsmd::{Action, Fsmd, FsmdMem, NextState, RegId, Rv, RvKind, State, StateId};
pub use netlist::{bin_class, CellData, CellId, CellKind, Netlist, Ram, RamId};
pub use lower::fsmd_to_netlist;
pub use verilog::{fsmd_to_verilog, netlist_to_verilog};
