//! Technology-independent area and delay models.
//!
//! The paper's claims are all *relative* (area explosion, bit-width
//! savings, cycle-count ratios), so absolute accuracy is not the goal;
//! internal consistency is. Area is measured in NAND2-equivalent gates and
//! delay in nanoseconds of a generic 90 nm-ish standard-cell library:
//!
//! | resource | area (gates) | delay (ns) |
//! |---|---|---|
//! | add/sub (w bits) | `9w` | `0.05·(1+⌈log2 w⌉)` (carry-lookahead depth) |
//! | multiply | `4.5·w²` | `0.05·(2+2·⌈log2 w⌉)` |
//! | divide/modulo | `9·w²` | `0.05·w·2` (iterative array) |
//! | compare | `3w` | `0.05·(1+⌈log2 w⌉)` |
//! | bitwise | `w` | `0.05` |
//! | shift (barrel) | `3·w·⌈log2 w⌉` | `0.05·⌈log2 w⌉` |
//! | mux | `3w` | `0.07` |
//! | register | `8w` | setup/cq folded into 0.1 overhead per cycle |
//! | RAM (n×w) | `1.2·n·w + 12·⌈log2 n⌉` | `0.3 + 0.05·⌈log2 n⌉` read |
//!
//! Everything downstream (the scheduler's chaining decisions, the
//! backends' reported Fmax, the experiment tables) pulls numbers from this
//! one module.

use chls_frontend::IntType;

/// Operation classes the cost model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Addition or subtraction.
    AddSub,
    /// Multiplication.
    Mul,
    /// Division or remainder.
    DivRem,
    /// Comparison.
    Cmp,
    /// Bitwise logic (and/or/xor/not) and negation.
    Logic,
    /// Barrel shift.
    Shift,
    /// 2-to-1 multiplexer.
    Mux,
    /// Width conversion (free: wiring only).
    Cast,
    /// Memory read port access.
    MemRead,
    /// Memory write port access.
    MemWrite,
    /// Constant (free).
    Const,
}

/// The area/delay model. The default is the table in the module docs;
/// experiments that need skewed latencies (e.g. the asynchronous-circuit
/// study) construct variants.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Base gate delay in ns (one NAND2 level).
    pub gate_delay_ns: f64,
    /// Per-cycle sequential overhead (register clock-to-q + setup), ns.
    pub sequential_overhead_ns: f64,
    /// Multiplier applied to `DivRem` delay (models iterative dividers).
    pub div_delay_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gate_delay_ns: 0.05,
            sequential_overhead_ns: 0.1,
            div_delay_scale: 1.0,
        }
    }
}

fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

impl CostModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Combinational area of one operation at the given width, in
    /// NAND2-equivalent gates.
    pub fn area(&self, op: OpClass, width: u16) -> f64 {
        let w = width as f64;
        match op {
            OpClass::AddSub => 9.0 * w,
            OpClass::Mul => 4.5 * w * w,
            OpClass::DivRem => 9.0 * w * w,
            OpClass::Cmp => 3.0 * w,
            OpClass::Logic => w,
            OpClass::Shift => 3.0 * w * (ceil_log2(width as u64).max(1) as f64),
            OpClass::Mux => 3.0 * w,
            OpClass::Cast | OpClass::Const => 0.0,
            // Port overhead only; storage is costed by `ram_area`.
            OpClass::MemRead | OpClass::MemWrite => 2.0 * w,
        }
    }

    /// Combinational delay of one operation at the given width, in ns.
    pub fn delay(&self, op: OpClass, width: u16) -> f64 {
        let lg = ceil_log2(width as u64).max(1) as f64;
        let g = self.gate_delay_ns;
        match op {
            OpClass::AddSub => g * (1.0 + lg),
            OpClass::Mul => g * (2.0 + 2.0 * lg),
            OpClass::DivRem => g * (width as f64) * 2.0 * self.div_delay_scale,
            OpClass::Cmp => g * (1.0 + lg),
            OpClass::Logic => g,
            OpClass::Shift => g * lg,
            OpClass::Mux => g * 1.4,
            OpClass::Cast | OpClass::Const => 0.0,
            OpClass::MemRead => 0.0, // costed via `ram_read_delay`
            OpClass::MemWrite => g,
        }
    }

    /// Area of an `n`-word × `elem`-bit memory, in gates.
    pub fn ram_area(&self, len: usize, elem: IntType) -> f64 {
        1.2 * (len as f64) * (elem.width as f64) + 12.0 * (ceil_log2(len as u64).max(1) as f64)
    }

    /// Read-access delay of an `n`-word memory, in ns.
    pub fn ram_read_delay(&self, len: usize) -> f64 {
        0.3 + self.gate_delay_ns * (ceil_log2(len as u64).max(1) as f64)
    }

    /// Area of a `width`-bit register, in gates.
    pub fn reg_area(&self, width: u16) -> f64 {
        8.0 * width as f64
    }

    /// Latency of one operation in *time units* for the asynchronous
    /// dataflow simulator (delay quantized to 10 ps units).
    pub fn async_latency(&self, op: OpClass, width: u16) -> u64 {
        let ns = match op {
            OpClass::MemRead | OpClass::MemWrite => self.ram_read_delay(64),
            other => self.delay(other, width),
        };
        ((ns * 100.0).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_is_bigger_and_slower() {
        let m = CostModel::new();
        assert!(m.area(OpClass::AddSub, 32) > m.area(OpClass::AddSub, 8));
        assert!(m.delay(OpClass::Mul, 32) > m.delay(OpClass::Mul, 8));
        assert!(m.area(OpClass::Mul, 32) > m.area(OpClass::AddSub, 32));
    }

    #[test]
    fn divider_dominates_delay() {
        let m = CostModel::new();
        assert!(m.delay(OpClass::DivRem, 32) > m.delay(OpClass::Mul, 32) * 3.0);
    }

    #[test]
    fn casts_and_constants_are_free() {
        let m = CostModel::new();
        assert_eq!(m.area(OpClass::Cast, 32), 0.0);
        assert_eq!(m.delay(OpClass::Const, 32), 0.0);
    }

    #[test]
    fn bitwidth_area_scales_linearly_for_adders() {
        let m = CostModel::new();
        let a8 = m.area(OpClass::AddSub, 8);
        let a32 = m.area(OpClass::AddSub, 32);
        assert!((a32 / a8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ram_area_grows_with_words_and_width() {
        let m = CostModel::new();
        let small = m.ram_area(16, IntType::new(8, false));
        let big = m.ram_area(256, IntType::new(32, false));
        assert!(big > small * 10.0);
        assert!(m.ram_read_delay(1024) > m.ram_read_delay(16));
    }

    #[test]
    fn async_latency_is_positive_and_ordered() {
        let m = CostModel::new();
        assert!(m.async_latency(OpClass::Logic, 8) >= 1);
        assert!(m.async_latency(OpClass::DivRem, 32) > m.async_latency(OpClass::AddSub, 32));
    }

    #[test]
    fn ceil_log2_edges() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }
}
