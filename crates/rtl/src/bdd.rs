//! Combinational equivalence checking with reduced ordered BDDs.
//!
//! The netlist optimizer ([`crate::netlist::Netlist::fold_constants`] and
//! friends) rewrites circuits; simulation can only spot-check the result.
//! This module gives the *formal* answer for combinational designs: both
//! netlists are bit-blasted into ROBDDs over their (shared, name-matched)
//! primary inputs and compared output by output. A mismatch comes with a
//! concrete counterexample input assignment.
//!
//! Scope: purely combinational cells (inputs, constants, logic,
//! arithmetic, muxes, casts, constant shifts). Registers, RAM ports,
//! division, and data-dependent shifts return [`BddError::Unsupported`] —
//! sequential equivalence is the cycle-exact cross-simulation's job
//! (`tests/netlist_crossval.rs`). Multipliers are supported but have
//! exponential BDDs; the node `budget` bounds the blowup and overruns
//! return [`BddError::Budget`] rather than eating the machine.
//!
//! Variable order interleaves the bits of all inputs (bit 0 of every
//! input first), which keeps ripple-carry adder and comparator BDDs
//! linear.

use crate::netlist::{CellId, CellKind, Netlist};
use chls_ir::{BinKind, UnKind};
use std::collections::HashMap;

/// Why a netlist could not be checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The netlist contains a non-combinational or unsupported cell.
    Unsupported(String),
    /// The BDD grew past the node budget (expected for multiplier-heavy
    /// datapaths — BDDs of multiplication are exponential).
    Budget,
    /// The two netlists' primary inputs or outputs do not line up.
    InterfaceMismatch(String),
}

impl std::fmt::Display for BddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BddError::Unsupported(what) => write!(f, "unsupported cell: {what}"),
            BddError::Budget => write!(f, "BDD node budget exceeded"),
            BddError::InterfaceMismatch(what) => write!(f, "interface mismatch: {what}"),
        }
    }
}

impl std::error::Error for BddError {}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// All outputs are functionally identical.
    Equivalent,
    /// Some output bit differs; a witness assignment is attached.
    Differ {
        /// Name of the first differing output.
        output: String,
        /// Bit position within that output.
        bit: u32,
        /// Input assignment (name → value) on which the outputs differ.
        witness: Vec<(String, i64)>,
    },
}

/// A BDD node reference. 0 and 1 are the terminals.
type Ref = u32;
const ZERO: Ref = 0;
const ONE: Ref = 1;

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_memo: HashMap<(Ref, Ref, Ref), Ref>,
    budget: usize,
}

impl Bdd {
    fn new(budget: usize) -> Self {
        // Terminals occupy slots 0 and 1 with a sentinel variable.
        let t = Node {
            var: u32::MAX,
            lo: 0,
            hi: 0,
        };
        Bdd {
            nodes: vec![t, t],
            unique: HashMap::new(),
            ite_memo: HashMap::new(),
            budget,
        }
    }

    fn var(&self, r: Ref) -> u32 {
        self.nodes[r as usize].var
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Result<Ref, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return Ok(r);
        }
        if self.nodes.len() >= self.budget {
            return Err(BddError::Budget);
        }
        let r = self.nodes.len() as Ref;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        Ok(r)
    }

    fn mk_var(&mut self, var: u32) -> Result<Ref, BddError> {
        self.mk(var, ZERO, ONE)
    }

    /// if-then-else: the one combinator every boolean op reduces to.
    fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, BddError> {
        if f == ONE {
            return Ok(g);
        }
        if f == ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == ONE && h == ZERO {
            return Ok(f);
        }
        if let Some(&r) = self.ite_memo.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = self.var(f).min(self.var(g)).min(self.var(h));
        let split = |bdd: &Bdd, r: Ref, high: bool| -> Ref {
            if bdd.var(r) == top {
                if high {
                    bdd.nodes[r as usize].hi
                } else {
                    bdd.nodes[r as usize].lo
                }
            } else {
                r
            }
        };
        let (f1, g1, h1) = (
            split(self, f, true),
            split(self, g, true),
            split(self, h, true),
        );
        let (f0, g0, h0) = (
            split(self, f, false),
            split(self, g, false),
            split(self, h, false),
        );
        let hi = self.ite(f1, g1, h1)?;
        let lo = self.ite(f0, g0, h0)?;
        let r = self.mk(top, lo, hi)?;
        self.ite_memo.insert((f, g, h), r);
        Ok(r)
    }

    fn and(&mut self, a: Ref, b: Ref) -> Result<Ref, BddError> {
        self.ite(a, b, ZERO)
    }
    fn or(&mut self, a: Ref, b: Ref) -> Result<Ref, BddError> {
        self.ite(a, ONE, b)
    }
    fn xor(&mut self, a: Ref, b: Ref) -> Result<Ref, BddError> {
        let nb = self.not(b)?;
        self.ite(a, nb, b)
    }
    fn not(&mut self, a: Ref) -> Result<Ref, BddError> {
        self.ite(a, ZERO, ONE)
    }

    /// One satisfying assignment of `r` (which must not be ZERO), as
    /// var → bool pairs along the chosen path.
    fn any_sat(&self, r: Ref) -> Vec<(u32, bool)> {
        let mut out = Vec::new();
        let mut cur = r;
        while cur != ONE && cur != ZERO {
            let n = self.nodes[cur as usize];
            if n.hi != ZERO {
                out.push((n.var, true));
                cur = n.hi;
            } else {
                out.push((n.var, false));
                cur = n.lo;
            }
        }
        out
    }
}

/// A word as little-endian BDD bits plus the signedness used when a wider
/// consumer extends it.
#[derive(Clone)]
struct Word {
    bits: Vec<Ref>,
    signed: bool,
}

impl Word {
    /// The bit at `i`, sign/zero-extending past the stored width.
    fn bit(&self, i: usize) -> Ref {
        if i < self.bits.len() {
            self.bits[i]
        } else if self.signed {
            *self.bits.last().expect("words are non-empty")
        } else {
            ZERO
        }
    }
}

struct Blaster<'a> {
    bdd: &'a mut Bdd,
}

impl Blaster<'_> {
    fn constant(&mut self, value: i64, width: usize, signed: bool) -> Word {
        let bits = (0..width)
            .map(|i| if (value >> i) & 1 == 1 { ONE } else { ZERO })
            .collect();
        Word { bits, signed }
    }

    /// Ripple-carry `a + b + cin`.
    fn add(&mut self, a: &Word, b: &Word, mut carry: Ref, width: usize) -> Result<Vec<Ref>, BddError> {
        let mut out = Vec::with_capacity(width);
        for i in 0..width {
            let (x, y) = (a.bit(i), b.bit(i));
            let xy = self.bdd.xor(x, y)?;
            out.push(self.bdd.xor(xy, carry)?);
            let maj1 = self.bdd.and(x, y)?;
            let maj2 = self.bdd.and(xy, carry)?;
            carry = self.bdd.or(maj1, maj2)?;
        }
        Ok(out)
    }

    /// `a < b` as a single bit, per `signed`.
    fn less_than(&mut self, a: &Word, b: &Word, width: usize, signed: bool) -> Result<Ref, BddError> {
        // Compare from the MSB down; at the sign bit the polarity flips.
        let mut lt = ZERO;
        let mut gt = ZERO;
        for i in (0..width).rev() {
            let (mut x, mut y) = (a.bit(i), b.bit(i));
            if signed && i == width - 1 {
                // A set sign bit means *smaller*.
                std::mem::swap(&mut x, &mut y);
            }
            let nx = self.bdd.not(x)?;
            let ny = self.bdd.not(y)?;
            let x_lt_y = self.bdd.and(nx, y)?;
            let x_gt_y = self.bdd.and(x, ny)?;
            let undecided = {
                let n_lt = self.bdd.not(lt)?;
                let n_gt = self.bdd.not(gt)?;
                self.bdd.and(n_lt, n_gt)?
            };
            let new_lt = self.bdd.and(undecided, x_lt_y)?;
            let new_gt = self.bdd.and(undecided, x_gt_y)?;
            lt = self.bdd.or(lt, new_lt)?;
            gt = self.bdd.or(gt, new_gt)?;
        }
        Ok(lt)
    }

    fn equal(&mut self, a: &Word, b: &Word, width: usize) -> Result<Ref, BddError> {
        let mut eq = ONE;
        for i in 0..width {
            let x = self.bdd.xor(a.bit(i), b.bit(i))?;
            let nx = self.bdd.not(x)?;
            eq = self.bdd.and(eq, nx)?;
        }
        Ok(eq)
    }

    fn negate(&mut self, a: &Word, width: usize) -> Result<Vec<Ref>, BddError> {
        let inv = Word {
            bits: (0..width)
                .map(|i| self.bdd.not(a.bit(i)))
                .collect::<Result<_, _>>()?,
            signed: a.signed,
        };
        let zero = self.constant(0, width, false);
        self.add(&inv, &zero, ONE, width)
    }

    /// Shift-and-add multiplication (exponential BDDs — budget-guarded).
    fn multiply(&mut self, a: &Word, b: &Word, width: usize) -> Result<Vec<Ref>, BddError> {
        let mut acc = self.constant(0, width, false);
        for i in 0..width {
            // partial = (b.bit(i) ? a : 0) << i
            let mut part = vec![ZERO; width];
            for j in 0..width.saturating_sub(i) {
                part[i + j] = self.bdd.and(b.bit(i), a.bit(j))?;
            }
            let part = Word {
                bits: part,
                signed: false,
            };
            let bits = self.add(&acc, &part, ZERO, width)?;
            acc = Word {
                bits,
                signed: false,
            };
        }
        Ok(acc.bits)
    }
}

fn const_shift_amount(nl: &Netlist, c: CellId) -> Option<i64> {
    match nl.cells[c.0 as usize].kind {
        CellKind::Const(v) => Some(v),
        _ => None,
    }
}

/// Bit-blasts one netlist into per-output BDD words. `vars` maps input
/// names to their variable bases (interleaved ordering is computed by the
/// caller so both netlists share it).
fn blast(
    nl: &Netlist,
    bdd: &mut Bdd,
    var_of: &dyn Fn(&str, usize) -> Option<u32>,
) -> Result<Vec<(String, Word)>, BddError> {
    let mut words: Vec<Option<Word>> = vec![None; nl.cells.len()];
    if !nl.rams.is_empty() {
        return Err(BddError::Unsupported("RAM block".to_string()));
    }
    // Cells are in construction order; inputs of a cell always precede it.
    for (ci, cell) in nl.cells.iter().enumerate() {
        let width = cell.ty.width as usize;
        let signed = cell.ty.signed;
        let word_of = |c: CellId, words: &[Option<Word>]| -> Word {
            words[c.0 as usize]
                .clone()
                .expect("cells are topologically ordered")
        };
        let mut bl = Blaster { bdd };
        let word = match &cell.kind {
            CellKind::Input { name } => {
                let bits = (0..width)
                    .map(|i| {
                        let v = var_of(name, i).ok_or_else(|| {
                            BddError::InterfaceMismatch(format!("unknown input `{name}`"))
                        })?;
                        bl.bdd.mk_var(v)
                    })
                    .collect::<Result<_, _>>()?;
                Word { bits, signed }
            }
            CellKind::Const(v) => bl.constant(*v, width, signed),
            CellKind::Cast { val, .. } => {
                let w = word_of(*val, &words);
                let bits = (0..width).map(|i| w.bit(i)).collect();
                Word { bits, signed }
            }
            CellKind::Un(op, a) => {
                let w = word_of(*a, &words);
                let bits = match op {
                    UnKind::Not => (0..width)
                        .map(|i| bl.bdd.not(w.bit(i)))
                        .collect::<Result<_, _>>()?,
                    UnKind::Neg => bl.negate(&w, width)?,
                };
                Word { bits, signed }
            }
            CellKind::Mux { sel, a, b } => {
                let s = word_of(*sel, &words).bit(0);
                let (wa, wb) = (word_of(*a, &words), word_of(*b, &words));
                let bits = (0..width)
                    .map(|i| bl.bdd.ite(s, wa.bit(i), wb.bit(i)))
                    .collect::<Result<_, _>>()?;
                Word { bits, signed }
            }
            CellKind::Bin(op, a, b) => {
                let (wa, wb) = (word_of(*a, &words), word_of(*b, &words));
                // Comparisons work at the operands' width; everything else
                // at the result width.
                let opw = nl.cells[a.0 as usize].ty.width as usize;
                let ops = nl.cells[a.0 as usize].ty.signed;
                let bits: Vec<Ref> = match op {
                    BinKind::And => (0..width)
                        .map(|i| bl.bdd.and(wa.bit(i), wb.bit(i)))
                        .collect::<Result<_, _>>()?,
                    BinKind::Or => (0..width)
                        .map(|i| bl.bdd.or(wa.bit(i), wb.bit(i)))
                        .collect::<Result<_, _>>()?,
                    BinKind::Xor => (0..width)
                        .map(|i| bl.bdd.xor(wa.bit(i), wb.bit(i)))
                        .collect::<Result<_, _>>()?,
                    BinKind::Add => bl.add(&wa, &wb, ZERO, width)?,
                    BinKind::Sub => {
                        let inv = Word {
                            bits: (0..width)
                                .map(|i| bl.bdd.not(wb.bit(i)))
                                .collect::<Result<_, _>>()?,
                            signed: wb.signed,
                        };
                        bl.add(&wa, &inv, ONE, width)?
                    }
                    BinKind::Mul => bl.multiply(&wa, &wb, width)?,
                    BinKind::Shl | BinKind::Shr => {
                        let Some(sh) = const_shift_amount(nl, *b) else {
                            return Err(BddError::Unsupported(
                                "data-dependent shift".to_string(),
                            ));
                        };
                        let sh = (sh.rem_euclid(64)) as usize;
                        match op {
                            BinKind::Shl => (0..width)
                                .map(|i| if i >= sh { wa.bit(i - sh) } else { ZERO })
                                .collect(),
                            _ => (0..width).map(|i| wa.bit(i + sh)).collect(),
                        }
                    }
                    BinKind::Eq | BinKind::Ne => {
                        let w = opw.max(nl.cells[b.0 as usize].ty.width as usize);
                        let eq = bl.equal(&wa, &wb, w + 1)?;
                        let bit = if matches!(op, BinKind::Eq) {
                            eq
                        } else {
                            bl.bdd.not(eq)?
                        };
                        vec![bit]
                    }
                    BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge => {
                        let w = opw.max(nl.cells[b.0 as usize].ty.width as usize) + 1;
                        let bit = match op {
                            BinKind::Lt => bl.less_than(&wa, &wb, w, ops)?,
                            BinKind::Gt => bl.less_than(&wb, &wa, w, ops)?,
                            BinKind::Ge => {
                                let lt = bl.less_than(&wa, &wb, w, ops)?;
                                bl.bdd.not(lt)?
                            }
                            _ => {
                                let gt = bl.less_than(&wb, &wa, w, ops)?;
                                bl.bdd.not(gt)?
                            }
                        };
                        vec![bit]
                    }
                    BinKind::Div | BinKind::Rem => {
                        return Err(BddError::Unsupported("division".to_string()))
                    }
                };
                Word { bits, signed }
            }
            CellKind::Reg { .. } => {
                return Err(BddError::Unsupported("register (sequential)".to_string()))
            }
            CellKind::RamRead { .. } | CellKind::RamWrite { .. } => {
                return Err(BddError::Unsupported("RAM port (sequential)".to_string()))
            }
        };
        words[ci] = Some(word);
    }
    Ok(nl
        .outputs
        .iter()
        .map(|(name, c)| {
            (
                name.clone(),
                words[c.0 as usize].clone().expect("output cell exists"),
            )
        })
        .collect())
}

/// Collects `(name, width, signed)` for every primary input, sorted by name.
fn inputs_of(nl: &Netlist) -> Vec<(String, u16, bool)> {
    let mut v: Vec<(String, u16, bool)> = nl
        .cells
        .iter()
        .filter_map(|c| match &c.kind {
            CellKind::Input { name } => Some((name.clone(), c.ty.width, c.ty.signed)),
            _ => None,
        })
        .collect();
    v.sort();
    v.dedup();
    v
}

/// Formally checks two combinational netlists for functional equivalence.
///
/// Inputs are matched by name (both netlists must expose the same primary
/// inputs) and outputs by name. `budget` bounds the BDD node count.
///
/// # Errors
///
/// [`BddError::Unsupported`] for sequential or non-bit-blastable cells,
/// [`BddError::Budget`] when the BDD exceeds `budget` nodes, and
/// [`BddError::InterfaceMismatch`] when the interfaces differ.
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    budget: usize,
) -> Result<Equivalence, BddError> {
    let ins_a = inputs_of(a);
    let ins_b = inputs_of(b);
    if ins_a != ins_b {
        return Err(BddError::InterfaceMismatch(format!(
            "inputs differ: {ins_a:?} vs {ins_b:?}"
        )));
    }
    // Interleaved variable order: bit 0 of every input, then bit 1, ...
    let n_inputs = ins_a.len();
    let index_of: HashMap<String, usize> = ins_a
        .iter()
        .enumerate()
        .map(|(i, (n, _, _))| (n.clone(), i))
        .collect();
    let var_of = |name: &str, bit: usize| -> Option<u32> {
        index_of
            .get(name)
            .map(|&i| (bit * n_inputs + i) as u32)
    };
    let mut bdd = Bdd::new(budget.max(16));
    let outs_a = blast(a, &mut bdd, &var_of)?;
    let outs_b = blast(b, &mut bdd, &var_of)?;
    let names_a: Vec<&String> = outs_a.iter().map(|(n, _)| n).collect();
    let names_b: Vec<&String> = outs_b.iter().map(|(n, _)| n).collect();
    if names_a != names_b {
        return Err(BddError::InterfaceMismatch(format!(
            "outputs differ: {names_a:?} vs {names_b:?}"
        )));
    }
    for ((name, wa), (_, wb)) in outs_a.iter().zip(&outs_b) {
        let width = wa.bits.len().max(wb.bits.len());
        for bit in 0..width {
            let diff = bdd.xor(wa.bit(bit), wb.bit(bit))?;
            if diff != ZERO {
                // Extract a witness: decode the satisfying path back into
                // per-input values (unassigned bits default to 0).
                let mut values: HashMap<usize, i64> = HashMap::new();
                for (var, val) in bdd.any_sat(diff) {
                    if val {
                        let input = (var as usize) % n_inputs;
                        let bitpos = (var as usize) / n_inputs;
                        *values.entry(input).or_insert(0) |= 1i64 << bitpos;
                    }
                }
                let witness = ins_a
                    .iter()
                    .enumerate()
                    .map(|(i, (n, w, s))| {
                        let raw = values.get(&i).copied().unwrap_or(0);
                        // Canonicalize to the input's type.
                        let ty = chls_frontend::IntType::new(*w, *s);
                        (n.clone(), chls_ir::eval_cast(ty, ty, raw))
                    })
                    .collect();
                return Ok(Equivalence::Differ {
                    output: name.clone(),
                    bit: bit as u32,
                    witness,
                });
            }
        }
    }
    Ok(Equivalence::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CellKind, Netlist};
    use chls_frontend::IntType;
    use chls_ir::{eval_bin, eval_cast, eval_un, BinKind};

    fn i32t() -> IntType {
        IntType::new(32, true)
    }
    fn u1() -> IntType {
        IntType::new(1, false)
    }

    /// Reference evaluation of a combinational netlist on concrete inputs
    /// (mirrors the levelized simulator's cell semantics).
    fn eval_netlist(nl: &Netlist, inputs: &[(String, i64)]) -> Vec<(String, i64)> {
        let mut vals = vec![0i64; nl.cells.len()];
        for (ci, cell) in nl.cells.iter().enumerate() {
            let v = match &cell.kind {
                CellKind::Input { name } => {
                    inputs
                        .iter()
                        .find(|(n, _)| n == name)
                        .expect("input provided")
                        .1
                }
                CellKind::Const(c) => *c,
                CellKind::Un(op, a) => eval_un(*op, cell.ty, vals[a.0 as usize]),
                CellKind::Bin(op, a, b) => {
                    let ty = if op.is_comparison() {
                        nl.cells[a.0 as usize].ty
                    } else {
                        cell.ty
                    };
                    eval_bin(*op, ty, vals[a.0 as usize], vals[b.0 as usize])
                }
                CellKind::Mux { sel, a, b } => {
                    if vals[sel.0 as usize] != 0 {
                        vals[a.0 as usize]
                    } else {
                        vals[b.0 as usize]
                    }
                }
                CellKind::Cast { from, val } => eval_cast(*from, cell.ty, vals[val.0 as usize]),
                other => panic!("not combinational: {other:?}"),
            };
            vals[ci] = eval_cast(cell.ty, cell.ty, v);
        }
        nl.outputs
            .iter()
            .map(|(n, c)| (n.clone(), vals[c.0 as usize]))
            .collect()
    }

    /// `a + b` vs `b + a`: structurally different, functionally equal.
    #[test]
    fn commuted_adders_are_equivalent() {
        let build = |swap: bool| {
            let mut nl = Netlist::new("add");
            let a = nl.add(CellKind::Input { name: "a".into() }, i32t());
            let b = nl.add(CellKind::Input { name: "b".into() }, i32t());
            let (x, y) = if swap { (b, a) } else { (a, b) };
            let s = nl.add(CellKind::Bin(BinKind::Add, x, y), i32t());
            nl.outputs.push(("sum".into(), s));
            nl
        };
        let r = check_equivalence(&build(false), &build(true), 1 << 20).unwrap();
        assert_eq!(r, Equivalence::Equivalent);
    }

    #[test]
    fn xor_self_equals_zero() {
        let mut nl1 = Netlist::new("x");
        let a = nl1.add(CellKind::Input { name: "a".into() }, i32t());
        let x = nl1.add(CellKind::Bin(BinKind::Xor, a, a), i32t());
        nl1.outputs.push(("o".into(), x));
        let mut nl2 = Netlist::new("z");
        let _a = nl2.add(CellKind::Input { name: "a".into() }, i32t());
        let z = nl2.add(CellKind::Const(0), i32t());
        nl2.outputs.push(("o".into(), z));
        let r = check_equivalence(&nl1, &nl2, 1 << 20).unwrap();
        assert_eq!(r, Equivalence::Equivalent);
    }

    /// De Morgan: `!(a & b) == !a | !b`.
    #[test]
    fn de_morgan_holds() {
        let mut nl1 = Netlist::new("l");
        let a = nl1.add(CellKind::Input { name: "a".into() }, i32t());
        let b = nl1.add(CellKind::Input { name: "b".into() }, i32t());
        let and = nl1.add(CellKind::Bin(BinKind::And, a, b), i32t());
        let o = nl1.add(CellKind::Un(chls_ir::UnKind::Not, and), i32t());
        nl1.outputs.push(("o".into(), o));
        let mut nl2 = Netlist::new("r");
        let a = nl2.add(CellKind::Input { name: "a".into() }, i32t());
        let b = nl2.add(CellKind::Input { name: "b".into() }, i32t());
        let na = nl2.add(CellKind::Un(chls_ir::UnKind::Not, a), i32t());
        let nb = nl2.add(CellKind::Un(chls_ir::UnKind::Not, b), i32t());
        let o = nl2.add(CellKind::Bin(BinKind::Or, na, nb), i32t());
        nl2.outputs.push(("o".into(), o));
        let r = check_equivalence(&nl1, &nl2, 1 << 20).unwrap();
        assert_eq!(r, Equivalence::Equivalent);
    }

    /// A planted bug (And swapped for Or) is found, and the witness truly
    /// separates the two circuits under concrete evaluation.
    #[test]
    fn planted_bug_yields_verified_counterexample() {
        let build = |op: BinKind| {
            let mut nl = Netlist::new("m");
            let a = nl.add(CellKind::Input { name: "a".into() }, i32t());
            let b = nl.add(CellKind::Input { name: "b".into() }, i32t());
            let c = nl.add(CellKind::Bin(op, a, b), i32t());
            let one = nl.add(CellKind::Const(1), i32t());
            let o = nl.add(CellKind::Bin(BinKind::Add, c, one), i32t());
            nl.outputs.push(("o".into(), o));
            nl
        };
        let good = build(BinKind::And);
        let bad = build(BinKind::Or);
        let r = check_equivalence(&good, &bad, 1 << 20).unwrap();
        let Equivalence::Differ { output, witness, .. } = r else {
            panic!("bug not found");
        };
        assert_eq!(output, "o");
        let og = eval_netlist(&good, &witness);
        let ob = eval_netlist(&bad, &witness);
        assert_ne!(og, ob, "witness does not separate: {witness:?}");
    }

    /// Comparison semantics: comparing the same `sint<8>` inputs signed
    /// vs reinterpreted-unsigned must differ, with a verified witness.
    #[test]
    fn signedness_of_comparison_matters() {
        let s8 = IntType::new(8, true);
        let u8t = IntType::new(8, false);
        let build = |unsigned_view: bool| {
            let mut nl = Netlist::new("c");
            let a = nl.add(CellKind::Input { name: "a".into() }, s8);
            let b = nl.add(CellKind::Input { name: "b".into() }, s8);
            let (x, y) = if unsigned_view {
                (
                    nl.add(CellKind::Cast { from: s8, val: a }, u8t),
                    nl.add(CellKind::Cast { from: s8, val: b }, u8t),
                )
            } else {
                (a, b)
            };
            let o = nl.add(CellKind::Bin(BinKind::Lt, x, y), u1());
            nl.outputs.push(("lt".into(), o));
            nl
        };
        let signed = build(false);
        let unsigned = build(true);
        let r = check_equivalence(&signed, &unsigned, 1 << 20).unwrap();
        let Equivalence::Differ { witness, .. } = r else {
            panic!("signed and unsigned compare cannot be equivalent");
        };
        assert_ne!(
            eval_netlist(&signed, &witness),
            eval_netlist(&unsigned, &witness),
            "witness does not separate: {witness:?}"
        );
    }

    /// The netlist optimizer is formally equivalence-preserving on a
    /// random-logic cone.
    #[test]
    fn netlist_optimizer_is_equivalence_preserving() {
        let mut nl = Netlist::new("cone");
        let a = nl.add(CellKind::Input { name: "a".into() }, i32t());
        let b = nl.add(CellKind::Input { name: "b".into() }, i32t());
        let k0 = nl.add(CellKind::Const(0), i32t());
        let k3 = nl.add(CellKind::Const(3), i32t());
        let t1 = nl.add(CellKind::Bin(BinKind::Add, a, k0), i32t()); // a + 0
        let t2 = nl.add(CellKind::Bin(BinKind::Xor, b, b), i32t()); // 0
        let t3 = nl.add(CellKind::Bin(BinKind::Or, t1, t2), i32t());
        let t4 = nl.add(CellKind::Bin(BinKind::And, t3, k3), i32t());
        let cmp = nl.add(CellKind::Bin(BinKind::Gt, a, b), u1());
        let o = nl.add(
            CellKind::Mux {
                sel: cmp,
                a: t4,
                b: t3,
            },
            i32t(),
        );
        nl.outputs.push(("o".into(), o));
        let mut opt = nl.clone();
        opt.fold_constants();
        opt.sweep_dead();
        assert!(opt.cells.len() <= nl.cells.len());
        let r = check_equivalence(&nl, &opt, 1 << 20).unwrap();
        assert_eq!(r, Equivalence::Equivalent);
    }

    /// Multipliers blow the node budget rather than the machine.
    #[test]
    fn multiplier_hits_budget_gracefully() {
        let mut nl = Netlist::new("mul");
        let a = nl.add(CellKind::Input { name: "a".into() }, i32t());
        let b = nl.add(CellKind::Input { name: "b".into() }, i32t());
        let m = nl.add(CellKind::Bin(BinKind::Mul, a, b), i32t());
        nl.outputs.push(("p".into(), m));
        match check_equivalence(&nl, &nl, 4096) {
            Err(BddError::Budget) => {}
            Ok(Equivalence::Equivalent) => {} // small budget may still fit
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// Sequential cells are rejected, not mis-checked.
    #[test]
    fn registers_are_rejected() {
        let mut nl = Netlist::new("seq");
        let a = nl.add(CellKind::Input { name: "a".into() }, i32t());
        let r = nl.add(
            CellKind::Reg {
                next: a,
                init: 0,
                en: None,
            },
            i32t(),
        );
        nl.outputs.push(("q".into(), r));
        assert!(matches!(
            check_equivalence(&nl, &nl, 1 << 16),
            Err(BddError::Unsupported(_))
        ));
    }
}
