//! FSMD → structural netlist lowering.
//!
//! Turns a finite-state machine + datapath into a flat word-level
//! netlist: a binary-encoded state register, one D register per datapath
//! register with a priority mux tree over all states that write it, RAM
//! blocks with per-state write-enable logic, and a `done`/`ret` pair
//! matching the behavioral Verilog's handshake. The result can be
//! simulated with the levelized netlist simulator — giving a second,
//! independent execution path for every clocked backend, which the
//! cross-validation tests compare against the FSMD simulator cycle for
//! cycle.

use crate::fsmd::{ActionKind, Fsmd, NextState, Rv, RvKind};
use crate::netlist::{CellId, CellKind, Netlist, Ram, RamId};
use chls_frontend::IntType;
use chls_ir::BinKind;
use std::collections::HashMap;

fn u1() -> IntType {
    IntType::new(1, false)
}

/// Lowers an FSMD to a structural netlist.
///
/// Outputs: `done` (1 bit) and, when the design returns a value, `ret`.
/// Array parameters appear as RAM blocks in the same order as
/// [`Fsmd::mems`]; bind their contents via [`Netlist::rams`] before
/// simulation.
pub fn fsmd_to_netlist(f: &Fsmd) -> Netlist {
    let _span = chls_trace::span("rtl.fsmd_to_netlist");
    let mut nl = Netlist::new(f.name.clone());
    let nstates = f.states.len().max(1);
    let state_bits = (usize::BITS - (nstates.max(2) - 1).leading_zeros()) as u16;
    let state_ty = IntType::new(state_bits.max(1), false);

    // Primary inputs.
    let inputs: Vec<CellId> = f
        .inputs
        .iter()
        .map(|(name, ty)| nl.add(CellKind::Input { name: name.clone() }, *ty))
        .collect();

    // Storage cells (placeholders patched after the next-state logic is
    // built, since registers are defined before their next inputs exist).
    let zero = nl.add(CellKind::Const(0), u1());
    let state_reg = nl.add(
        CellKind::Reg {
            next: zero,
            init: f.entry.0 as i64,
            en: None,
        },
        state_ty,
    );
    let done_reg = nl.add(
        CellKind::Reg {
            next: zero,
            init: 0,
            en: None,
        },
        u1(),
    );
    let regs: Vec<CellId> = f
        .regs
        .iter()
        .map(|r| {
            nl.add(
                CellKind::Reg {
                    next: zero,
                    init: r.init,
                    en: None,
                },
                r.ty,
            )
        })
        .collect();
    let rams: Vec<RamId> = f
        .mems
        .iter()
        .map(|m| {
            nl.add_ram(Ram {
                name: m.name.clone(),
                elem: m.elem,
                len: m.len.max(1),
                init: m.rom.clone(),
            })
        })
        .collect();
    let ret_reg = f.ret.as_ref().map(|rv| {
        nl.add(
            CellKind::Reg {
                next: zero,
                init: 0,
                en: None,
            },
            rv.ty,
        )
    });

    // `state == s` comparators, shared.
    let mut state_eq: HashMap<u32, CellId> = HashMap::new();
    let mut eq_state = |nl: &mut Netlist, s: u32| -> CellId {
        *state_eq.entry(s).or_insert_with(|| {
            let c = nl.add(CellKind::Const(s as i64), state_ty);
            nl.add(CellKind::Bin(BinKind::Eq, state_reg, c), u1())
        })
    };
    let not_done = {
        let z = nl.add(CellKind::Const(0), u1());
        nl.add(CellKind::Bin(BinKind::Eq, done_reg, z), u1())
    };

    // Rv → cells. `gate` is the activity predicate of the context using
    // this expression: memory-read addresses are muxed to 0 when inactive,
    // because the levelized simulator evaluates every cell every cycle and
    // an inactive state's stale index register may be out of range (real
    // hardware would read garbage it then ignores).
    fn build_rv(
        nl: &mut Netlist,
        regs: &[CellId],
        rams: &[RamId],
        inputs: &[CellId],
        gate: CellId,
        rv: &Rv,
    ) -> CellId {
        match &rv.kind {
            RvKind::Const(v) => nl.add(CellKind::Const(*v), rv.ty),
            RvKind::Reg(r) => regs[r.0 as usize],
            RvKind::Input(i) => inputs[*i],
            RvKind::Un(op, a) => {
                let av = build_rv(nl, regs, rams, inputs, gate, a);
                nl.add(CellKind::Un(*op, av), rv.ty)
            }
            RvKind::Bin(op, a, b) => {
                let av = build_rv(nl, regs, rams, inputs, gate, a);
                let bv = build_rv(nl, regs, rams, inputs, gate, b);
                nl.add(CellKind::Bin(*op, av, bv), rv.ty)
            }
            RvKind::Mux(s, a, b) => {
                let sv = build_rv(nl, regs, rams, inputs, gate, s);
                let av = build_rv(nl, regs, rams, inputs, gate, a);
                let bv = build_rv(nl, regs, rams, inputs, gate, b);
                nl.add(CellKind::Mux { sel: sv, a: av, b: bv }, rv.ty)
            }
            RvKind::Cast(a) => {
                let av = build_rv(nl, regs, rams, inputs, gate, a);
                let from = a.ty;
                nl.add(CellKind::Cast { from, val: av }, rv.ty)
            }
            RvKind::MemRead { mem, addr } => {
                let av = build_rv(nl, regs, rams, inputs, gate, addr);
                let aty = nl.cell(av).ty;
                let z = nl.add(CellKind::Const(0), aty);
                let gated = nl.add(CellKind::Mux { sel: gate, a: av, b: z }, aty);
                nl.add(
                    CellKind::RamRead {
                        ram: rams[mem.0 as usize],
                        addr: gated,
                    },
                    rv.ty,
                )
            }
        }
    }

    // Register next-value priority chains and RAM write ports.
    let mut reg_next: Vec<CellId> = regs.clone(); // default: hold
    let mut state_next: CellId = state_reg; // default: hold
    let mut done_next: CellId = done_reg;
    let mut ret_next: CellId = ret_reg.unwrap_or(zero);

    for (si, st) in f.states.iter().enumerate() {
        let in_state = eq_state(&mut nl, si as u32);
        let active = nl.add(CellKind::Bin(BinKind::And, in_state, not_done), u1());
        for action in &st.actions {
            let guard = match &action.guard {
                None => active,
                Some(g) => {
                    let gv = build_rv(&mut nl, &regs, &rams, &inputs, active, g);
                    nl.add(CellKind::Bin(BinKind::And, active, gv), u1())
                }
            };
            match &action.kind {
                ActionKind::SetReg(r, rv) => {
                    let v = build_rv(&mut nl, &regs, &rams, &inputs, guard, rv);
                    let prev = reg_next[r.0 as usize];
                    reg_next[r.0 as usize] = nl.add(
                        CellKind::Mux {
                            sel: guard,
                            a: v,
                            b: prev,
                        },
                        f.regs[r.0 as usize].ty,
                    );
                }
                ActionKind::MemWrite { mem, addr, value } => {
                    let av = build_rv(&mut nl, &regs, &rams, &inputs, guard, addr);
                    let vv = build_rv(&mut nl, &regs, &rams, &inputs, guard, value);
                    nl.add(
                        CellKind::RamWrite {
                            ram: rams[mem.0 as usize],
                            addr: av,
                            data: vv,
                            en: guard,
                        },
                        f.mems[mem.0 as usize].elem,
                    );
                }
            }
        }
        // Next-state logic.
        match &st.next {
            NextState::Goto(t) => {
                let tv = nl.add(CellKind::Const(t.0 as i64), state_ty);
                state_next = nl.add(
                    CellKind::Mux {
                        sel: active,
                        a: tv,
                        b: state_next,
                    },
                    state_ty,
                );
            }
            NextState::Branch { cond, then, els } => {
                let cv = build_rv(&mut nl, &regs, &rams, &inputs, active, cond);
                let tv = nl.add(CellKind::Const(then.0 as i64), state_ty);
                let ev = nl.add(CellKind::Const(els.0 as i64), state_ty);
                let pick = nl.add(CellKind::Mux { sel: cv, a: tv, b: ev }, state_ty);
                state_next = nl.add(
                    CellKind::Mux {
                        sel: active,
                        a: pick,
                        b: state_next,
                    },
                    state_ty,
                );
            }
            NextState::Cases { cases, default } => {
                let mut pick = nl.add(CellKind::Const(default.0 as i64), state_ty);
                for (c, t) in cases.iter().rev() {
                    let cv = build_rv(&mut nl, &regs, &rams, &inputs, active, c);
                    let tv = nl.add(CellKind::Const(t.0 as i64), state_ty);
                    pick = nl.add(
                        CellKind::Mux {
                            sel: cv,
                            a: tv,
                            b: pick,
                        },
                        state_ty,
                    );
                }
                state_next = nl.add(
                    CellKind::Mux {
                        sel: active,
                        a: pick,
                        b: state_next,
                    },
                    state_ty,
                );
            }
            NextState::Done => {
                let one = nl.add(CellKind::Const(1), u1());
                done_next = nl.add(
                    CellKind::Mux {
                        sel: active,
                        a: one,
                        b: done_next,
                    },
                    u1(),
                );
                if let (Some(rr), Some(ret_rv)) = (ret_reg, f.ret.as_ref()) {
                    let v = build_rv(&mut nl, &regs, &rams, &inputs, active, ret_rv);
                    let _ = rr;
                    ret_next = nl.add(
                        CellKind::Mux {
                            sel: active,
                            a: v,
                            b: ret_next,
                        },
                        ret_rv.ty,
                    );
                }
            }
        }
    }

    // Patch register next inputs.
    let patch = |nl: &mut Netlist, reg: CellId, next: CellId| {
        if let CellKind::Reg { next: n, .. } = &mut nl.cells[reg.0 as usize].kind {
            *n = next;
        }
    };
    patch(&mut nl, state_reg, state_next);
    patch(&mut nl, done_reg, done_next);
    for (r, n) in regs.iter().zip(&reg_next) {
        patch(&mut nl, *r, *n);
    }
    if let Some(rr) = ret_reg {
        patch(&mut nl, rr, ret_next);
    }

    nl.set_output("done", done_reg);
    if let Some(rr) = ret_reg {
        nl.set_output("ret", rr);
    }
    nl.fold_constants();
    nl.sweep_dead();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FsmdBuilder;
    use chls_ir::BinKind;

    fn ty32() -> IntType {
        IntType::new(32, true)
    }

    /// Hand-built 3-state counter: count to `limit`, return the count.
    fn counter() -> Fsmd {
        let ty = ty32();
        let mut b = FsmdBuilder::new("cnt");
        let limit = b.input("limit", ty, 0);
        let r = b.reg("r", ty, 0);
        let s0 = b.state();
        let s1 = b.state();
        let bump = b.add(b.get(r), Rv::konst(1, ty));
        let done = Rv {
            kind: RvKind::Bin(
                BinKind::Ge,
                Box::new(b.get(r)),
                Box::new(limit),
            ),
            ty: IntType::new(1, false),
        };
        b.at(s0).set(r, bump).branch(done, s1, s0);
        b.at(s1).done();
        let ret = b.get(r);
        b.returning(ret).finish()
    }

    #[test]
    fn lowered_netlist_structure() {
        let f = counter();
        let nl = fsmd_to_netlist(&f);
        assert!(!nl.is_combinational());
        let names: Vec<&str> = nl.outputs.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"done"));
        assert!(names.contains(&"ret"));
        // Emits valid-looking Verilog too.
        let v = crate::verilog::netlist_to_verilog(&nl);
        assert!(v.contains("module cnt"), "{v}");
    }

    #[test]
    fn lowered_netlist_is_acyclic_combinationally() {
        let f = counter();
        let nl = fsmd_to_netlist(&f);
        // critical_path panics on combinational cycles.
        let m = crate::cost::CostModel::new();
        assert!(nl.critical_path(&m) > 0.0);
    }
}
