//! Word-level netlists.
//!
//! A netlist is a sea of cells, each producing one word-level net (its own
//! [`CellId`]). Combinational cells reference their input nets;
//! [`CellKind::Reg`] breaks combinational cycles at clock edges;
//! [`CellKind::RamRead`]/[`CellKind::RamWrite`] access shared memories
//! (asynchronous read, synchronous write, like FPGA distributed RAM).
//!
//! The Cones backend produces purely combinational netlists (no registers,
//! no RAMs); FSMD lowering produces sequential ones.

use crate::cost::{CostModel, OpClass};
use chls_frontend::IntType;
use chls_ir::{BinKind, UnKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a cell (and the net it drives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Index of a RAM block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RamId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Cell kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// A named primary input.
    Input {
        /// Port name.
        name: String,
    },
    /// A constant driver.
    Const(i64),
    /// Unary operator.
    Un(UnKind, CellId),
    /// Binary operator (signedness from the cell's type; comparisons use
    /// the operand cells' type and drive a 1-bit net).
    Bin(BinKind, CellId, CellId),
    /// 2-to-1 multiplexer: `sel ? a : b`.
    Mux {
        /// 1-bit select.
        sel: CellId,
        /// Driven when `sel` is 1.
        a: CellId,
        /// Driven when `sel` is 0.
        b: CellId,
    },
    /// Width/signedness conversion.
    Cast {
        /// Input type.
        from: IntType,
        /// Input net.
        val: CellId,
    },
    /// A D register with initial value and optional enable.
    Reg {
        /// Next-state input.
        next: CellId,
        /// Reset/initial value.
        init: i64,
        /// Clock enable (register holds when 0).
        en: Option<CellId>,
    },
    /// Asynchronous RAM read port.
    RamRead {
        /// Which RAM.
        ram: RamId,
        /// Element address.
        addr: CellId,
    },
    /// Synchronous RAM write port (commits on the clock edge when `en`).
    RamWrite {
        /// Which RAM.
        ram: RamId,
        /// Element address.
        addr: CellId,
        /// Data input.
        data: CellId,
        /// Write enable.
        en: CellId,
    },
}

impl CellKind {
    /// Visits input nets.
    pub fn for_each_input(&self, mut f: impl FnMut(CellId)) {
        match self {
            CellKind::Input { .. } | CellKind::Const(_) => {}
            CellKind::Un(_, a) | CellKind::Cast { val: a, .. } => f(*a),
            CellKind::Bin(_, a, b) => {
                f(*a);
                f(*b);
            }
            CellKind::Mux { sel, a, b } => {
                f(*sel);
                f(*a);
                f(*b);
            }
            CellKind::Reg { next, en, .. } => {
                f(*next);
                if let Some(e) = en {
                    f(*e);
                }
            }
            CellKind::RamRead { addr, .. } => f(*addr),
            CellKind::RamWrite { addr, data, en, .. } => {
                f(*addr);
                f(*data);
                f(*en);
            }
        }
    }

    /// True for cells whose output changes only at clock edges.
    pub fn is_sequential(&self) -> bool {
        matches!(self, CellKind::Reg { .. } | CellKind::RamWrite { .. })
    }

    /// The cost-model class of this cell.
    pub fn op_class(&self) -> OpClass {
        match self {
            CellKind::Input { .. } | CellKind::Const(_) => OpClass::Const,
            CellKind::Un(UnKind::Neg, _) => OpClass::AddSub,
            CellKind::Un(UnKind::Not, _) => OpClass::Logic,
            CellKind::Bin(op, ..) => bin_class(*op),
            CellKind::Mux { .. } => OpClass::Mux,
            CellKind::Cast { .. } => OpClass::Cast,
            CellKind::Reg { .. } => OpClass::Const,
            CellKind::RamRead { .. } => OpClass::MemRead,
            CellKind::RamWrite { .. } => OpClass::MemWrite,
        }
    }
}

/// Cost class of a binary operator.
pub fn bin_class(op: BinKind) -> OpClass {
    match op {
        BinKind::Add | BinKind::Sub => OpClass::AddSub,
        BinKind::Mul => OpClass::Mul,
        BinKind::Div | BinKind::Rem => OpClass::DivRem,
        BinKind::Shl | BinKind::Shr => OpClass::Shift,
        BinKind::And | BinKind::Or | BinKind::Xor => OpClass::Logic,
        BinKind::Eq | BinKind::Ne | BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge => {
            OpClass::Cmp
        }
    }
}

/// A cell with its output type.
#[derive(Debug, Clone, PartialEq)]
pub struct CellData {
    /// Payload.
    pub kind: CellKind,
    /// Output net type.
    pub ty: IntType,
}

/// A RAM block.
#[derive(Debug, Clone, PartialEq)]
pub struct Ram {
    /// Name (for Verilog and reports).
    pub name: String,
    /// Element type.
    pub elem: IntType,
    /// Word count.
    pub len: usize,
    /// Initial contents (ROMs and initialized RAMs).
    pub init: Option<Vec<i64>>,
}

/// A word-level netlist.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    /// All cells; [`CellId`] indexes this.
    pub cells: Vec<CellData>,
    /// RAM blocks.
    pub rams: Vec<Ram>,
    /// Named outputs.
    pub outputs: Vec<(String, CellId)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a cell, returning its net.
    pub fn add(&mut self, kind: CellKind, ty: IntType) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(CellData { kind, ty });
        id
    }

    /// Adds a RAM block.
    pub fn add_ram(&mut self, ram: Ram) -> RamId {
        let id = RamId(self.rams.len() as u32);
        self.rams.push(ram);
        id
    }

    /// The cell for a net.
    pub fn cell(&self, id: CellId) -> &CellData {
        &self.cells[id.0 as usize]
    }

    /// Marks a net as a named output.
    pub fn set_output(&mut self, name: impl Into<String>, net: CellId) {
        self.outputs.push((name.into(), net));
    }

    /// True when the netlist contains no sequential cells — a Cones-style
    /// pure combinational network.
    pub fn is_combinational(&self) -> bool {
        !self.cells.iter().any(|c| c.kind.is_sequential()) && self.rams.is_empty()
    }

    /// Total area in NAND2-equivalent gates under `model`.
    pub fn area(&self, model: &CostModel) -> f64 {
        let mut total = 0.0;
        for c in &self.cells {
            total += match &c.kind {
                CellKind::Reg { .. } => model.reg_area(c.ty.width),
                other => model.area(other.op_class(), operand_width(self, other, c.ty)),
            };
        }
        for r in &self.rams {
            total += model.ram_area(r.len, r.elem);
        }
        total
    }

    /// Longest combinational path delay in ns under `model` (inputs,
    /// registers, and RAM reads start paths; registers, RAM write ports,
    /// and outputs end them).
    ///
    /// # Panics
    ///
    /// Panics if the combinational cells contain a cycle.
    pub fn critical_path(&self, model: &CostModel) -> f64 {
        // Longest-path DP over the combinational DAG in topological order.
        let n = self.cells.len();
        let mut arrival = vec![f64::NAN; n];
        let mut state = vec![0u8; n]; // 0=unvisited, 1=in progress, 2=done
        let mut worst: f64 = 0.0;

        fn visit(
            nl: &Netlist,
            model: &CostModel,
            id: CellId,
            arrival: &mut [f64],
            state: &mut [u8],
        ) -> f64 {
            let i = id.0 as usize;
            match state[i] {
                2 => return arrival[i],
                1 => panic!("combinational cycle through {id}"),
                _ => {}
            }
            state[i] = 1;
            let cell = &nl.cells[i];
            let t = match &cell.kind {
                // Sequential and source cells start paths at t=0.
                CellKind::Input { .. } | CellKind::Const(_) | CellKind::Reg { .. } => 0.0,
                CellKind::RamRead { ram, addr } => {
                    let a = visit(nl, model, *addr, arrival, state);
                    a + model.ram_read_delay(nl.rams[ram.0 as usize].len)
                }
                CellKind::RamWrite { addr, data, en, .. } => {
                    let mut m = visit(nl, model, *addr, arrival, state);
                    m = m.max(visit(nl, model, *data, arrival, state));
                    m = m.max(visit(nl, model, *en, arrival, state));
                    m + model.delay(OpClass::MemWrite, cell.ty.width)
                }
                other => {
                    let mut m: f64 = 0.0;
                    other.for_each_input(|inp| {
                        m = m.max(visit(nl, model, inp, arrival, state));
                    });
                    m + model.delay(other.op_class(), operand_width(nl, other, cell.ty))
                }
            };
            state[i] = 2;
            arrival[i] = t;
            t
        }

        for i in 0..n {
            let cell = &self.cells[i];
            // End points: register/ram-write inputs and primary outputs.
            match &cell.kind {
                CellKind::Reg { next, en, .. } => {
                    let mut t = visit(self, model, *next, &mut arrival, &mut state);
                    if let Some(e) = en {
                        t = t.max(visit(self, model, *e, &mut arrival, &mut state));
                    }
                    worst = worst.max(t);
                }
                CellKind::RamWrite { .. } => {
                    let t = visit(self, model, CellId(i as u32), &mut arrival, &mut state);
                    worst = worst.max(t);
                }
                _ => {}
            }
        }
        for (_, out) in &self.outputs {
            let t = visit(self, model, *out, &mut arrival, &mut state);
            worst = worst.max(t);
        }
        worst
    }

    /// Maximum clock frequency in MHz implied by the critical path plus
    /// sequential overhead.
    pub fn fmax_mhz(&self, model: &CostModel) -> f64 {
        let period = self.critical_path(model) + model.sequential_overhead_ns;
        if period <= 0.0 {
            return f64::INFINITY;
        }
        1000.0 / period
    }

    /// Folds constant cells: binary/unary ops with all-constant inputs
    /// become constants, muxes with constant selects collapse to one arm,
    /// and casts of constants fold. Runs to a fixpoint; returns the number
    /// of cells folded. Combine with [`Netlist::sweep_dead`] to actually
    /// shrink the netlist.
    pub fn fold_constants(&mut self) -> usize {
        use chls_ir::{eval_bin, eval_cast, eval_un};
        let mut folded = 0;
        loop {
            let mut changed = false;
            for i in 0..self.cells.len() {
                let cell = self.cells[i].clone();
                let const_of = |id: CellId, cells: &[CellData]| -> Option<i64> {
                    match &cells[id.0 as usize].kind {
                        CellKind::Const(v) => Some(*v),
                        _ => None,
                    }
                };
                let new_kind = match &cell.kind {
                    CellKind::Bin(op, a, b) => {
                        match (const_of(*a, &self.cells), const_of(*b, &self.cells)) {
                            (Some(x), Some(y)) => {
                                let ety = if op.is_comparison() {
                                    self.cells[a.0 as usize].ty
                                } else {
                                    cell.ty
                                };
                                Some(CellKind::Const(eval_bin(*op, ety, x, y)))
                            }
                            // x & 0 / x * 0 -> 0.
                            (_, Some(0)) | (Some(0), _)
                                if matches!(op, BinKind::And | BinKind::Mul) =>
                            {
                                Some(CellKind::Const(0))
                            }
                            _ => None,
                        }
                    }
                    CellKind::Un(op, a) => const_of(*a, &self.cells)
                        .map(|x| CellKind::Const(eval_un(*op, cell.ty, x))),
                    CellKind::Mux { sel, a, b } => match const_of(*sel, &self.cells) {
                        Some(0) => Some(self.cells[b.0 as usize].kind.clone())
                            .filter(|k| matches!(k, CellKind::Const(_)))
                            .or(Some(CellKind::Cast {
                                from: self.cells[b.0 as usize].ty,
                                val: *b,
                            })),
                        Some(_) => Some(self.cells[a.0 as usize].kind.clone())
                            .filter(|k| matches!(k, CellKind::Const(_)))
                            .or(Some(CellKind::Cast {
                                from: self.cells[a.0 as usize].ty,
                                val: *a,
                            })),
                        None => None,
                    },
                    CellKind::Cast { from, val } => match const_of(*val, &self.cells) {
                        Some(x) => Some(CellKind::Const(eval_cast(*from, cell.ty, x))),
                        None if *from == cell.ty => {
                            // Identity cast of a constant handled above; a
                            // non-constant identity cast stays (cheap wire).
                            None
                        }
                        None => None,
                    },
                    _ => None,
                };
                if let Some(k) = new_kind {
                    if k != self.cells[i].kind {
                        self.cells[i].kind = k;
                        folded += 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        folded
    }

    /// Removes cells not reachable from outputs, registers, or RAM writes.
    /// Returns the number of cells removed.
    pub fn sweep_dead(&mut self) -> usize {
        let n = self.cells.len();
        let mut live = vec![false; n];
        let mut stack: Vec<CellId> = Vec::new();
        for (_, o) in &self.outputs {
            stack.push(*o);
        }
        for (i, c) in self.cells.iter().enumerate() {
            // Writes are side effects; registers only matter if read — but
            // keeping all RAM writes is the conservative, correct choice.
            if matches!(c.kind, CellKind::RamWrite { .. }) {
                stack.push(CellId(i as u32));
            }
        }
        while let Some(id) = stack.pop() {
            if live[id.0 as usize] {
                continue;
            }
            live[id.0 as usize] = true;
            self.cells[id.0 as usize].kind.for_each_input(|i| {
                if !live[i.0 as usize] {
                    stack.push(i);
                }
            });
        }
        let removed = live.iter().filter(|l| !**l).count();
        if removed == 0 {
            return 0;
        }
        // Renumber.
        let mut map: Vec<Option<CellId>> = vec![None; n];
        let mut new_cells = Vec::with_capacity(n - removed);
        for (i, cell) in self.cells.iter().enumerate() {
            if live[i] {
                map[i] = Some(CellId(new_cells.len() as u32));
                new_cells.push(cell.clone());
            }
        }
        let remap = |c: CellId| map[c.0 as usize].expect("live cell input must be live");
        for cell in &mut new_cells {
            let mut kind = cell.kind.clone();
            match &mut kind {
                CellKind::Input { .. } | CellKind::Const(_) => {}
                CellKind::Un(_, a) | CellKind::Cast { val: a, .. } => *a = remap(*a),
                CellKind::Bin(_, a, b) => {
                    *a = remap(*a);
                    *b = remap(*b);
                }
                CellKind::Mux { sel, a, b } => {
                    *sel = remap(*sel);
                    *a = remap(*a);
                    *b = remap(*b);
                }
                CellKind::Reg { next, en, .. } => {
                    *next = remap(*next);
                    if let Some(e) = en {
                        *e = remap(*e);
                    }
                }
                CellKind::RamRead { addr, .. } => *addr = remap(*addr),
                CellKind::RamWrite { addr, data, en, .. } => {
                    *addr = remap(*addr);
                    *data = remap(*data);
                    *en = remap(*en);
                }
            }
            cell.kind = kind;
        }
        for (_, o) in &mut self.outputs {
            *o = remap(*o);
        }
        self.cells = new_cells;
        removed
    }

    /// Counts cells by class, for reports.
    pub fn cell_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for c in &self.cells {
            let key = match &c.kind {
                CellKind::Input { .. } => "input",
                CellKind::Const(_) => "const",
                CellKind::Un(..) => "unary",
                CellKind::Bin(op, ..) => op.mnemonic(),
                CellKind::Mux { .. } => "mux",
                CellKind::Cast { .. } => "cast",
                CellKind::Reg { .. } => "reg",
                CellKind::RamRead { .. } => "ram_read",
                CellKind::RamWrite { .. } => "ram_write",
            };
            *h.entry(key).or_insert(0) += 1;
        }
        h
    }
}

/// Width used for costing: comparisons cost at their operand width, not
/// their 1-bit result.
fn operand_width(nl: &Netlist, kind: &CellKind, out_ty: IntType) -> u16 {
    match kind {
        CellKind::Bin(op, a, _) if op.is_comparison() => nl.cells[a.0 as usize].ty.width,
        _ => out_ty.width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(w: u16) -> IntType {
        IntType::new(w, false)
    }

    /// out = (a + b) * a
    fn small_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let b = nl.add(CellKind::Input { name: "b".into() }, u(8));
        let sum = nl.add(CellKind::Bin(BinKind::Add, a, b), u(8));
        let prod = nl.add(CellKind::Bin(BinKind::Mul, sum, a), u(8));
        nl.set_output("out", prod);
        nl
    }

    #[test]
    fn combinational_detection() {
        let nl = small_netlist();
        assert!(nl.is_combinational());
        let mut nl2 = nl.clone();
        let c = nl2.add(CellKind::Const(0), u(8));
        let r = nl2.add(
            CellKind::Reg {
                next: c,
                init: 0,
                en: None,
            },
            u(8),
        );
        nl2.set_output("r", r);
        assert!(!nl2.is_combinational());
    }

    #[test]
    fn area_sums_cells() {
        let nl = small_netlist();
        let m = CostModel::new();
        let expected = m.area(OpClass::AddSub, 8) + m.area(OpClass::Mul, 8);
        assert!((nl.area(&m) - expected).abs() < 1e-9);
    }

    #[test]
    fn critical_path_is_add_then_mul() {
        let nl = small_netlist();
        let m = CostModel::new();
        let expected = m.delay(OpClass::AddSub, 8) + m.delay(OpClass::Mul, 8);
        assert!((nl.critical_path(&m) - expected).abs() < 1e-9);
        assert!(nl.fmax_mhz(&m) > 0.0 && nl.fmax_mhz(&m).is_finite());
    }

    #[test]
    fn registers_cut_timing_paths() {
        let mut nl = Netlist::new("t");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let b = nl.add(CellKind::Input { name: "b".into() }, u(8));
        let sum = nl.add(CellKind::Bin(BinKind::Add, a, b), u(8));
        let reg = nl.add(
            CellKind::Reg {
                next: sum,
                init: 0,
                en: None,
            },
            u(8),
        );
        let prod = nl.add(CellKind::Bin(BinKind::Mul, reg, a), u(8));
        nl.set_output("out", prod);
        let m = CostModel::new();
        // Two separate paths: add (to reg) and mul (reg to out); critical is max.
        let expected = m.delay(OpClass::AddSub, 8).max(m.delay(OpClass::Mul, 8));
        assert!((nl.critical_path(&m) - expected).abs() < 1e-9);
    }

    #[test]
    fn comparison_costs_at_operand_width() {
        let mut nl = Netlist::new("t");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(32));
        let b = nl.add(CellKind::Input { name: "b".into() }, u(32));
        let lt = nl.add(CellKind::Bin(BinKind::Lt, a, b), u(1));
        nl.set_output("o", lt);
        let m = CostModel::new();
        assert!((nl.area(&m) - m.area(OpClass::Cmp, 32)).abs() < 1e-9);
    }

    #[test]
    fn sweep_removes_dead_cells() {
        let mut nl = small_netlist();
        // A dangling adder no output depends on.
        let a = CellId(0);
        let dead = nl.add(CellKind::Bin(BinKind::Add, a, a), u(8));
        let _ = dead;
        assert_eq!(nl.cells.len(), 5);
        let removed = nl.sweep_dead();
        assert_eq!(removed, 1);
        assert_eq!(nl.cells.len(), 4);
        // Outputs still valid.
        let m = CostModel::new();
        let _ = nl.critical_path(&m);
    }

    #[test]
    #[should_panic(expected = "combinational cycle")]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("bad");
        // Self-feeding adder (no register in the loop).
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let fake = nl.add(CellKind::Const(0), u(8));
        let sum = nl.add(CellKind::Bin(BinKind::Add, a, fake), u(8));
        // Overwrite: make the adder feed itself.
        nl.cells[sum.0 as usize].kind = CellKind::Bin(BinKind::Add, a, sum);
        nl.set_output("o", sum);
        let _ = nl.critical_path(&CostModel::new());
    }

    #[test]
    fn histogram_counts() {
        let nl = small_netlist();
        let h = nl.cell_histogram();
        assert_eq!(h.get("input"), Some(&2));
        assert_eq!(h.get("add"), Some(&1));
        assert_eq!(h.get("mul"), Some(&1));
    }
}
