//! Ocapi-style structural construction.
//!
//! In IMEC's Ocapi (and Lipton's PDL++, and structural SystemC), "the
//! user's C++ program runs to generate a data structure that represents
//! hardware". This module is that mechanism for Rust: a fluent builder over
//! [`Fsmd`] where each user-declared state takes exactly one cycle —
//! Ocapi's timing rule ("a designer specifies state machines and each
//! state gets a cycle").
//!
//! ## Example
//!
//! ```
//! use chls_rtl::builder::FsmdBuilder;
//! use chls_frontend::IntType;
//!
//! let ty = IntType::new(16, false);
//! let mut b = FsmdBuilder::new("accumulate");
//! let x = b.input("x", ty, 0);
//! let acc = b.reg("acc", ty, 0);
//! let s0 = b.state();
//! let s1 = b.state();
//! // s0 and s1: acc <= acc + x (one cycle each).
//! let bump = b.add(b.get(acc), x);
//! b.at(s0).set(acc, bump.clone()).goto(s1);
//! b.at(s1).set(acc, bump).done();
//! let result = b.get(acc);
//! let fsmd = b.returning(result).finish();
//! assert_eq!(fsmd.states.len(), 2);
//! ```

use crate::fsmd::{Action, Fsmd, FsmdMem, MemId, NextState, RegId, Rv, RvKind, StateId};
use chls_frontend::IntType;
use chls_ir::BinKind;

/// Fluent builder for [`Fsmd`] designs.
#[derive(Debug, Clone)]
pub struct FsmdBuilder {
    fsmd: Fsmd,
}

impl FsmdBuilder {
    /// Starts a design.
    pub fn new(name: impl Into<String>) -> Self {
        FsmdBuilder {
            fsmd: Fsmd::new(name),
        }
    }

    /// Declares a scalar input bound to parameter `param`.
    pub fn input(&mut self, name: impl Into<String>, ty: IntType, param: usize) -> Rv {
        let idx = self.fsmd.add_input(name, ty, param);
        Rv {
            kind: RvKind::Input(idx),
            ty,
        }
    }

    /// Declares a register.
    pub fn reg(&mut self, name: impl Into<String>, ty: IntType, init: i64) -> RegId {
        self.fsmd.add_reg(name, ty, init)
    }

    /// Declares a memory.
    pub fn mem(&mut self, name: impl Into<String>, elem: IntType, len: usize) -> MemId {
        self.fsmd.add_mem(FsmdMem {
            name: name.into(),
            elem,
            len,
            rom: None,
            param_index: None,
        })
    }

    /// Declares a ROM with contents.
    pub fn rom(&mut self, name: impl Into<String>, elem: IntType, contents: Vec<i64>) -> MemId {
        let len = contents.len();
        self.fsmd.add_mem(FsmdMem {
            name: name.into(),
            elem,
            len,
            rom: Some(contents),
            param_index: None,
        })
    }

    /// Adds a state (one cycle, Ocapi rule).
    pub fn state(&mut self) -> StateId {
        self.fsmd.add_state()
    }

    /// Current value of a register as a datapath expression.
    pub fn get(&self, r: impl IntoRv) -> Rv {
        r.into_rv(&self.fsmd)
    }

    /// Constant expression.
    pub fn konst(&self, v: i64, ty: IntType) -> Rv {
        Rv::konst(v, ty)
    }

    /// `a + b` (at `a`'s type).
    pub fn add(&self, a: Rv, b: Rv) -> Rv {
        let ty = a.ty;
        Rv::bin(BinKind::Add, ty, a, b)
    }

    /// `a - b`.
    pub fn sub(&self, a: Rv, b: Rv) -> Rv {
        let ty = a.ty;
        Rv::bin(BinKind::Sub, ty, a, b)
    }

    /// `a * b`.
    pub fn mul(&self, a: Rv, b: Rv) -> Rv {
        let ty = a.ty;
        Rv::bin(BinKind::Mul, ty, a, b)
    }

    /// `a == b` (1-bit result).
    pub fn eq(&self, a: Rv, b: Rv) -> Rv {
        Rv {
            kind: RvKind::Bin(BinKind::Eq, Box::new(a), Box::new(b)),
            ty: IntType::new(1, false),
        }
    }

    /// `a < b` (1-bit result, signedness from `a`).
    pub fn lt(&self, a: Rv, b: Rv) -> Rv {
        Rv {
            kind: RvKind::Bin(BinKind::Lt, Box::new(a), Box::new(b)),
            ty: IntType::new(1, false),
        }
    }

    /// `sel ? a : b`.
    pub fn mux(&self, sel: Rv, a: Rv, b: Rv) -> Rv {
        let ty = a.ty;
        Rv {
            kind: RvKind::Mux(Box::new(sel), Box::new(a), Box::new(b)),
            ty,
        }
    }

    /// Combinational memory read.
    pub fn read(&self, mem: MemId, addr: Rv) -> Rv {
        let ty = self.fsmd.mems[mem.0 as usize].elem;
        Rv {
            kind: RvKind::MemRead {
                mem,
                addr: Box::new(addr),
            },
            ty,
        }
    }

    /// Opens a state for editing.
    pub fn at(&mut self, s: StateId) -> StateEdit<'_> {
        StateEdit { b: self, s }
    }

    /// Sets the value returned when the machine finishes.
    pub fn returning(mut self, rv: Rv) -> Self {
        self.fsmd.ret = Some(rv);
        self
    }

    /// Finishes construction.
    pub fn finish(self) -> Fsmd {
        self.fsmd
    }
}

/// Types that can be read as a datapath expression.
pub trait IntoRv {
    /// Converts to an [`Rv`] against the design being built.
    fn into_rv(self, fsmd: &Fsmd) -> Rv;
}

impl IntoRv for RegId {
    fn into_rv(self, fsmd: &Fsmd) -> Rv {
        Rv::reg(self, fsmd.regs[self.0 as usize].ty)
    }
}

impl IntoRv for Rv {
    fn into_rv(self, _fsmd: &Fsmd) -> Rv {
        self
    }
}

/// Editing handle for one state.
pub struct StateEdit<'a> {
    b: &'a mut FsmdBuilder,
    s: StateId,
}

impl StateEdit<'_> {
    /// Adds a register transfer `r <= rv` to this state.
    pub fn set(self, r: RegId, rv: Rv) -> Self {
        let s = self.s;
        self.b.fsmd.state_mut(s).actions.push(Action::set(r, rv));
        self
    }

    /// Adds a memory write `mem[addr] <= value` to this state.
    pub fn write(self, mem: MemId, addr: Rv, value: Rv) -> Self {
        let s = self.s;
        self.b
            .fsmd
            .state_mut(s)
            .actions
            .push(Action::write(mem, addr, value));
        self
    }

    /// Unconditional transfer to `t`.
    pub fn goto(self, t: StateId) {
        let s = self.s;
        self.b.fsmd.state_mut(s).next = NextState::Goto(t);
    }

    /// Adds a guarded register transfer `if (guard) r <= rv`.
    pub fn set_if(self, guard: Rv, r: RegId, rv: Rv) -> Self {
        let s = self.s;
        self.b
            .fsmd
            .state_mut(s)
            .actions
            .push(Action::set_if(guard, r, rv));
        self
    }

    /// Adds a guarded memory write.
    pub fn write_if(self, guard: Rv, mem: MemId, addr: Rv, value: Rv) -> Self {
        let s = self.s;
        self.b
            .fsmd
            .state_mut(s)
            .actions
            .push(Action::write_if(guard, mem, addr, value));
        self
    }

    /// Two-way branch.
    pub fn branch(self, cond: Rv, then: StateId, els: StateId) {
        let s = self.s;
        self.b.fsmd.state_mut(s).next = NextState::Branch { cond, then, els };
    }

    /// Finish execution in this state.
    pub fn done(self) {
        let s = self.s;
        self.b.fsmd.state_mut(s).next = NextState::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsmd::NextState;

    #[test]
    fn builder_constructs_counter() {
        let ty = IntType::new(8, false);
        let mut b = FsmdBuilder::new("cnt");
        let limit = b.input("limit", ty, 0);
        let r = b.reg("r", ty, 0);
        let s0 = b.state();
        let s1 = b.state();
        let bump = b.add(b.get(r), Rv::konst(1, ty));
        let at_limit = b.eq(b.get(r), limit);
        b.at(s0).set(r, bump).branch(at_limit, s1, s0);
        b.at(s1).done();
        let f = b.returning(Rv::reg(r, ty)).finish();
        assert_eq!(f.states.len(), 2);
        assert_eq!(f.regs.len(), 1);
        assert!(matches!(f.states[0].next, NextState::Branch { .. }));
        assert!(f.ret.is_some());
    }

    #[test]
    fn builder_memories() {
        let ty = IntType::new(16, false);
        let mut b = FsmdBuilder::new("m");
        let rom = b.rom("tab", ty, vec![1, 2, 3, 4]);
        let ram = b.mem("buf", ty, 8);
        let r = b.reg("r", ty, 0);
        let s = b.state();
        let val = b.read(rom, Rv::konst(2, ty));
        let zero = Rv::konst(0, ty);
        b.at(s)
            .set(r, val.clone())
            .write(ram, zero, val)
            .done();
        let f = b.finish();
        assert_eq!(f.mems.len(), 2);
        assert_eq!(f.mems[0].rom.as_deref(), Some(&[1, 2, 3, 4][..]));
        assert_eq!(f.states[0].actions.len(), 2);
    }
}
